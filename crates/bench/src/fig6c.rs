//! Figure 6c — query time as a function of bin-size imbalance.
//!
//! The paper sweeps the difference between the sensitive-bin size and the
//! non-sensitive-bin size (at a fixed dataset) and finds that retrieval time
//! is minimised when |SB| = |NSB| — i.e. the optimal layout is the
//! (approximately) square one, |SB| = |NSB| = √|NS|.

use pds_cloud::NetworkModel;
use pds_common::Result;
use pds_core::{BinShape, BinningConfig, QbExecutor, QueryBinning};
use pds_storage::Partitioner;
use pds_systems::{NonDetScanEngine, SecureSelectionEngine};
use pds_workload::SensitivityAssigner;

use crate::deploy::{lineitem, CostBreakdown, SEARCH_ATTR};

/// One point of the Figure 6c sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6cPoint {
    /// Number of sensitive bins used for this layout.
    pub sensitive_bins: usize,
    /// | |SB| − |NSB| | — the bin-size imbalance.
    pub imbalance: usize,
    /// Per-query simulated cost in seconds.
    pub per_query_sec: f64,
    /// Per-query wall-clock cost in seconds (real execution of the
    /// simulator code path; useful for the Criterion bench).
    pub wall_clock_sec: f64,
}

/// Runs the bin-shape sweep over a dataset of `tuples` tuples at
/// sensitivity `alpha`, trying each layout in `sensitive_bin_counts`.
pub fn run(
    tuples: usize,
    alpha: f64,
    sensitive_bin_counts: &[usize],
    queries_per_point: usize,
    seed: u64,
) -> Result<Vec<Fig6cPoint>> {
    let relation = lineitem(tuples, seed);
    let attr = relation.schema().attr_id(SEARCH_ATTR)?;
    let policy = SensitivityAssigner::new(seed).by_value_fraction(&relation, attr, alpha)?;
    let parts = Partitioner::new(policy).split(&relation)?;
    let s_distinct = parts.sensitive.distinct_values(attr).len();
    let ns_distinct = parts.nonsensitive.distinct_values(attr).len();

    let mut out = Vec::new();
    for &bins in sensitive_bin_counts {
        let Ok(shape) = BinShape::with_sensitive_bins(bins, s_distinct, ns_distinct) else {
            continue;
        };
        let config = BinningConfig {
            shape_override: Some(shape),
            ..Default::default()
        };
        let binning = QueryBinning::build(&parts, SEARCH_ATTR, config)?;
        let mut executor = QbExecutor::new(binning, NonDetScanEngine::new());
        let mut owner = pds_cloud::DbOwner::new(seed);
        let mut cloud = pds_cloud::CloudServer::new(NetworkModel::paper_wan());
        executor.outsource(&mut owner, &mut cloud, &parts)?;
        cloud.reset_metrics();
        owner.reset_metrics();

        let queries: Vec<_> = relation
            .distinct_values(attr)
            .into_iter()
            .take(queries_per_point)
            .collect();
        let start = std::time::Instant::now();
        let before_comm = cloud.comm_time();
        let before = crate::deploy::combined_metrics(&cloud, &owner);
        for q in &queries {
            executor.select(&mut owner, &mut cloud, q)?;
        }
        let wall = start.elapsed().as_secs_f64();
        let delta = crate::deploy::combined_metrics(&cloud, &owner).delta_since(&before);
        let cost = CostBreakdown {
            computation_sec: pds_systems::cost::computation_time_for_queries(
                &delta,
                &executor.engine().cost_profile(),
                queries.len() as u64,
            ),
            communication_sec: cloud.comm_time() - before_comm,
            queries: queries.len(),
        };
        out.push(Fig6cPoint {
            sensitive_bins: bins,
            imbalance: shape.imbalance(),
            per_query_sec: cost.per_query_sec(),
            wall_clock_sec: wall / queries.len().max(1) as f64,
        });
    }
    Ok(out)
}

/// The default sweep used by the `experiments` binary: a geometric range of
/// sensitive-bin counts around the square layout.
pub fn paper_run(tuples: usize, seed: u64) -> Result<Vec<Fig6cPoint>> {
    run(tuples, 0.5, &[2, 4, 8, 16, 32, 64, 128, 256], 8, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_systems::SecureSelectionEngine;

    #[test]
    fn balanced_shape_minimises_simulated_cost() {
        let pts = run(3_000, 0.5, &[2, 8, 32, 128], 5, 21).unwrap();
        assert!(pts.len() >= 3);
        // The minimum-cost point should also be (one of) the least
        // imbalanced layouts tried.
        let min_cost = pts
            .iter()
            .min_by(|a, b| a.per_query_sec.total_cmp(&b.per_query_sec))
            .unwrap();
        let min_imbalance = pts.iter().map(|p| p.imbalance).min().unwrap();
        let max_imbalance = pts.iter().map(|p| p.imbalance).max().unwrap();
        assert!(
            min_cost.imbalance <= (min_imbalance + max_imbalance) / 2,
            "cheapest layout {min_cost:?} should be on the balanced side"
        );
    }

    #[test]
    fn infeasible_layouts_are_skipped_gracefully() {
        let pts = run(500, 0.5, &[1, 4, 1_000_000], 2, 22).unwrap();
        assert!(!pts.is_empty());
    }

    #[test]
    fn engine_name_is_stable() {
        // Guard: the sweep is defined over the nondet-scan baseline.
        assert_eq!(NonDetScanEngine::new().name(), "nondet-scan");
    }
}
