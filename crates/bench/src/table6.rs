//! Table VI — QB composed with Opaque (SGX) and Jana (MPC) at sensitivity
//! levels of 1 %, 5 %, 20 %, 40 % and 60 %.
//!
//! The paper reports, for a selection query:
//!
//! | back-end | 1% | 5% | 20% | 40% | 60% |
//! |---|---|---|---|---|---|
//! | Opaque + QB (s) | 11 | 15 | 26 | 42 | 59 |
//! | Jana + QB (s)   | 22 | 80 | 270 | 505 | 749 |
//!
//! and, without QB, 89 s (Opaque over the full 700 MB / ≈6 M tuples) and
//! 1051 s (Jana over 1 M tuples).  We reproduce the *shape*: time grows
//! roughly linearly with sensitivity and stays far below the
//! everything-encrypted cost, because QB only pays the oblivious per-tuple
//! cost over the sensitive fraction of the data.

use pds_cloud::NetworkModel;
use pds_common::Result;

use crate::deploy::{lineitem, qb_deployment, scale_cost};

/// Re-exported back-end kind helpers for the Table VI experiment.
pub mod backends {
    pub use pds_systems::oblivious::{opaque_sim, JanaSimEngine, ObliviousScanEngine};
}

/// One row cell of Table VI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table6Cell {
    /// The back-end ("opaque-sim" or "jana-sim").
    pub backend: &'static str,
    /// Sensitivity ratio α.
    pub alpha: f64,
    /// Simulated seconds for one selection query with QB, scaled to the
    /// paper's modelled dataset size.
    pub qb_sec: f64,
    /// Simulated seconds for one selection without QB (full oblivious scan
    /// over the whole modelled dataset).
    pub without_qb_sec: f64,
}

/// Runs the Table VI experiment.
///
/// * `actual_tuples` — the dataset actually generated and executed;
/// * `modelled_tuples` — the dataset size the costs are scaled to (the
///   paper's 6 M tuples for Opaque and 1 M for Jana);
/// * `alphas` — sensitivity levels.
pub fn run(
    actual_tuples: usize,
    alphas: &[f64],
    queries_per_point: usize,
    seed: u64,
) -> Result<Vec<Table6Cell>> {
    let relation = lineitem(actual_tuples, seed);
    let attr = relation.schema().attr_id(crate::deploy::SEARCH_ATTR)?;
    let queries: Vec<_> = relation
        .distinct_values(attr)
        .into_iter()
        .take(queries_per_point)
        .collect();

    let mut out = Vec::new();
    for (backend_name, modelled_tuples) in [("opaque-sim", 6_000_000usize), ("jana-sim", 1_000_000)]
    {
        // Cost without QB: one oblivious scan of the whole modelled dataset.
        let profile = if backend_name == "opaque-sim" {
            pds_systems::CostProfile::opaque()
        } else {
            pds_systems::CostProfile::jana()
        };
        let without_qb_sec =
            profile.per_query_fixed_sec + modelled_tuples as f64 * profile.per_encrypted_tuple_sec;

        for &alpha in alphas {
            let engine = if backend_name == "opaque-sim" {
                backends::opaque_sim()
            } else {
                backends::JanaSimEngine::new()
            };
            let mut dep = qb_deployment(&relation, alpha, engine, NetworkModel::paper_wan(), seed)?;
            let cost = dep.run_and_cost(&queries)?;
            let per_query = CostPerQuery::from(cost).0;
            // Only the data-dependent part of the cost scales with the
            // modelled dataset size; the fixed per-query cost (enclave
            // entry / MPC setup) does not.
            let data_dependent = crate::deploy::CostBreakdown {
                computation_sec: (per_query.computation_sec - profile.per_query_fixed_sec).max(0.0),
                communication_sec: per_query.communication_sec,
                queries: 1,
            };
            let scaled = scale_cost(data_dependent, actual_tuples, modelled_tuples);
            out.push(Table6Cell {
                backend: backend_name,
                alpha,
                qb_sec: profile.per_query_fixed_sec + scaled.total_sec(),
                without_qb_sec,
            });
        }
    }
    Ok(out)
}

/// Helper converting a batch cost into a single-query cost breakdown.
struct CostPerQuery(crate::deploy::CostBreakdown);

impl From<crate::deploy::CostBreakdown> for CostPerQuery {
    fn from(c: crate::deploy::CostBreakdown) -> Self {
        let q = c.queries.max(1) as f64;
        CostPerQuery(crate::deploy::CostBreakdown {
            computation_sec: c.computation_sec / q,
            communication_sec: c.communication_sec / q,
            queries: 1,
        })
    }
}

/// The paper's sensitivity levels.
pub fn paper_alphas() -> Vec<f64> {
    vec![0.01, 0.05, 0.20, 0.40, 0.60]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qb_time_grows_with_sensitivity_and_beats_full_scan() {
        let cells = run(2_000, &[0.05, 0.20, 0.60], 3, 31).unwrap();
        let opaque: Vec<_> = cells.iter().filter(|c| c.backend == "opaque-sim").collect();
        assert_eq!(opaque.len(), 3);
        assert!(opaque[0].qb_sec < opaque[1].qb_sec);
        assert!(opaque[1].qb_sec < opaque[2].qb_sec);
        for c in &cells {
            assert!(c.qb_sec < c.without_qb_sec, "{c:?}");
        }
    }

    #[test]
    fn jana_rows_cost_more_per_tuple_than_opaque_rows() {
        let cells = run(1_500, &[0.20], 2, 32).unwrap();
        let opaque = cells.iter().find(|c| c.backend == "opaque-sim").unwrap();
        let jana = cells.iter().find(|c| c.backend == "jana-sim").unwrap();
        // Jana's per-tuple MPC cost is ~70× Opaque's; even scaled to a 6×
        // smaller modelled dataset it must remain the slower system.
        assert!(jana.qb_sec > opaque.qb_sec);
    }

    #[test]
    fn without_qb_matches_paper_headline_order() {
        let cells = run(1_000, &[0.05], 1, 33).unwrap();
        let opaque = cells.iter().find(|c| c.backend == "opaque-sim").unwrap();
        let jana = cells.iter().find(|c| c.backend == "jana-sim").unwrap();
        assert!((opaque.without_qb_sec - 89.0).abs() < 5.0);
        assert!((jana.without_qb_sec - 1051.0).abs() < 10.0);
    }
}
