//! Figure 6a — the analytical efficiency model.
//!
//! The paper plots `η = α + ρ(|SB| + |NSB|)/γ` as a function of γ for
//! sensitivity ratios α ∈ {0.3, 0.6, 0.9, 1.0} at ρ = 10 %.  QB beats the
//! fully encrypted baseline wherever η < 1.

use pds_core::EtaModel;

/// One point of the Figure 6a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6aPoint {
    /// Sensitivity ratio α.
    pub alpha: f64,
    /// γ = Ce / Ccom.
    pub gamma: f64,
    /// The predicted η.
    pub eta: f64,
}

/// Computes the Figure 6a series: for each α, η over a sweep of γ.
///
/// `rho` is the query selectivity (the paper uses 10 %); `bin_size` is the
/// common bin size |SB| = |NSB| (the paper's optimum √|NS|).
pub fn series(alphas: &[f64], gammas: &[f64], rho: f64, bin_size: usize) -> Vec<Fig6aPoint> {
    let mut out = Vec::with_capacity(alphas.len() * gammas.len());
    for &alpha in alphas {
        for &gamma in gammas {
            let model = EtaModel::new(alpha, rho, gamma, 1_000.0, bin_size, bin_size, 1_000_000);
            out.push(Fig6aPoint {
                alpha,
                gamma,
                eta: model.eta_simplified(),
            });
        }
    }
    out
}

/// The paper's parameterisation of Figure 6a: α ∈ {0.3, 0.6, 0.9, 1.0},
/// γ from 100 to 50 000, ρ = 10 %, 100-value bins.
pub fn paper_series() -> Vec<Fig6aPoint> {
    let gammas: Vec<f64> = [
        100.0, 1_000.0, 5_000.0, 10_000.0, 20_000.0, 30_000.0, 40_000.0, 50_000.0,
    ]
    .to_vec();
    series(&[0.3, 0.6, 0.9, 1.0], &gammas, 0.1, 100)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_monotone_in_alpha_and_gamma() {
        let pts = paper_series();
        // For a fixed γ, η grows with α.
        let at_gamma = |g: f64, a: f64| {
            pts.iter()
                .find(|p| (p.gamma - g).abs() < 1e-9 && (p.alpha - a).abs() < 1e-9)
                .unwrap()
                .eta
        };
        assert!(at_gamma(10_000.0, 0.3) < at_gamma(10_000.0, 0.6));
        assert!(at_gamma(10_000.0, 0.6) < at_gamma(10_000.0, 0.9));
        // For a fixed α, η shrinks as γ grows.
        assert!(at_gamma(100.0, 0.3) > at_gamma(50_000.0, 0.3));
    }

    #[test]
    fn alpha_one_never_below_one() {
        for p in paper_series()
            .iter()
            .filter(|p| (p.alpha - 1.0).abs() < 1e-9)
        {
            assert!(p.eta >= 1.0);
        }
    }

    #[test]
    fn large_gamma_converges_to_alpha() {
        let pts = series(&[0.6], &[1.0e7], 0.1, 100);
        assert!((pts[0].eta - 0.6).abs() < 1e-3);
    }

    #[test]
    fn figure_has_expected_cardinality() {
        assert_eq!(paper_series().len(), 4 * 8);
    }
}
