//! Shard-scaling experiment: retrieval latency of the same pseudo-TPC-H
//! workload over 1, 2, 4 and 8 cloud shards.
//!
//! Each query touches exactly one shard (its bin pair's home), so a workload
//! spreads across shards and the **parallel wall-clock** — the time until
//! the busiest shard finishes — drops as the shard count grows: every shard
//! stores only its own sensitive bins, so full-scan back-ends touch `~1/N`
//! of the ciphertexts per query, and shards serve disjoint episode streams
//! concurrently.  The aggregate (sum-over-shards) cost stays in the same
//! ballpark; the win is parallelism, exactly as for any sharded store.

use pds_cloud::{BinTransport, NetworkModel};
use pds_common::Result;
use pds_systems::NonDetScanEngine;

use crate::deploy::{sharded_qb_deployment, ShardedCostBreakdown};

/// One row of the shard-scaling experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardScalingPoint {
    /// Number of shards the deployment ran over.
    pub shards: usize,
    /// Queries executed.
    pub queries: usize,
    /// Sum-over-shards simulated seconds (as if one machine did everything).
    pub aggregate_sec: f64,
    /// Max-over-shards simulated seconds (the parallel wall-clock estimate).
    pub parallel_sec: f64,
    /// **Measured** wall-clock seconds of the same workload with per-shard
    /// fetches fanned out on OS threads ([`BinTransport::Threaded`]): each
    /// shard holds only its own sensitive bins, so per-episode work shrinks
    /// with the shard count and the threads genuinely overlap — this is the
    /// observation the `parallel_sec` column only models.
    pub measured_sec: f64,
    /// Simulated-network wall-clock of the same workload's wire traffic:
    /// the measured per-shard frame streams replayed through the
    /// event-driven `pds_proto::NetSim`, one link per shard, so transfers
    /// on different shards overlap on the virtual clock.
    pub sim_net_sec: f64,
}

impl ShardScalingPoint {
    /// Parallel seconds per query.
    pub fn parallel_per_query_sec(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.parallel_sec / self.queries as f64
        }
    }
}

/// Runs the same uniform workload over one deployment per requested shard
/// count (all built from the same relation, sensitivity and seed) and
/// reports aggregate and parallel costs.
pub fn run(
    tuples: usize,
    shard_counts: &[usize],
    queries: usize,
    seed: u64,
) -> Result<Vec<ShardScalingPoint>> {
    let relation = crate::deploy::lineitem(tuples, seed);
    let mut out = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        let mut dep = sharded_qb_deployment(
            &relation,
            0.3,
            shards,
            NonDetScanEngine::new(),
            NetworkModel::paper_wan(),
            seed,
        )?;
        let workload = dep.workload(seed.wrapping_add(1))?.draw(queries);
        let cost: ShardedCostBreakdown =
            dep.run_and_cost_with(&workload, BinTransport::Threaded)?;
        out.push(ShardScalingPoint {
            shards,
            queries: workload.len(),
            aggregate_sec: cost.aggregate.total_sec(),
            parallel_sec: cost.parallel_sec,
            measured_sec: cost.measured_wall_sec,
            sim_net_sec: cost.sim_wall_sec,
        });
    }
    Ok(out)
}

/// The shard counts an experiment sweeps for a maximum of `max`: the powers
/// of two up to `max`, always ending at `max` itself.  `max == 0` yields an
/// empty sweep (zero shards is not a deployment) rather than panicking.
pub fn shard_count_sweep(max: usize) -> Vec<usize> {
    let mut counts: Vec<usize> = Vec::new();
    let mut n = 1;
    while n <= max {
        counts.push(n);
        n *= 2;
    }
    if counts.last().is_some_and(|&last| last != max) {
        counts.push(max);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_wall_clock_decreases_with_shard_count() {
        let points = run(1_600, &[1, 4], 24, 42).unwrap();
        assert_eq!(points.len(), 2);
        assert!(
            points[1].parallel_sec < points[0].parallel_sec,
            "4 shards ({}) should beat 1 shard ({})",
            points[1].parallel_sec,
            points[0].parallel_sec
        );
        assert!(points.iter().all(|p| p.parallel_per_query_sec() > 0.0));
    }

    #[test]
    fn measured_wall_clock_decreases_with_shard_count() {
        // The acceptance gate of the threaded transport: at 4 shards each
        // query's engine scans ~1/4 of the ciphertexts AND the four episode
        // streams overlap on OS threads, so the *measured* elapsed time
        // must drop below the 1-shard measurement even on a single-core
        // machine (the work reduction alone guarantees it).
        let points = run(1_600, &[1, 4], 24, 42).unwrap();
        assert!(points.iter().all(|p| p.measured_sec > 0.0));
        assert!(points.iter().all(|p| p.sim_net_sec > 0.0));
        assert!(
            points[1].measured_sec < points[0].measured_sec,
            "measured wall-clock at 4 shards ({}) must beat 1 shard ({})",
            points[1].measured_sec,
            points[0].measured_sec
        );
    }

    #[test]
    fn sweep_is_powers_of_two_up_to_max() {
        assert_eq!(shard_count_sweep(1), vec![1]);
        assert_eq!(shard_count_sweep(4), vec![1, 2, 4]);
        assert_eq!(shard_count_sweep(6), vec![1, 2, 4, 6]);
        assert_eq!(shard_count_sweep(8), vec![1, 2, 4, 8]);
        // Regression: max == 0 used to panic on `counts.last().expect(...)`.
        assert!(shard_count_sweep(0).is_empty());
    }
}
