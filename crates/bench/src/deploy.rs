//! Shared experiment machinery: deployments, workloads and cost accounting.

use pds_cloud::{BinTransport, CloudServer, DbOwner, Metrics, NetworkModel, ShardRouter};
use pds_common::{Result, Value};
use pds_core::{BinningConfig, QbExecutor, QueryBinning};
use pds_storage::{PartitionedRelation, Partitioner, Relation};
use pds_systems::SecureSelectionEngine;
use pds_workload::{QueryWorkload, SensitivityAssigner, TpchConfig, TpchGenerator};

/// The searchable attribute every TPC-H-style experiment uses.
pub const SEARCH_ATTR: &str = "L_PARTKEY";

/// Cost of a query (or a batch of queries), split by origin.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostBreakdown {
    /// Simulated computation seconds (crypto + plaintext + owner work).
    pub computation_sec: f64,
    /// Simulated communication seconds (bytes over the network model).
    pub communication_sec: f64,
    /// Number of queries the cost covers.
    pub queries: usize,
}

impl CostBreakdown {
    /// Total simulated seconds.
    pub fn total_sec(&self) -> f64 {
        self.computation_sec + self.communication_sec
    }

    /// Average simulated seconds per query.
    pub fn per_query_sec(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total_sec() / self.queries as f64
        }
    }
}

/// Combines the cloud's and the owner's work counters into one object.
pub fn combined_metrics(cloud: &CloudServer, owner: &DbOwner) -> Metrics {
    let mut m = *cloud.metrics();
    m.absorb(owner.metrics());
    m
}

/// Generates the standard experiment relation: a pseudo-TPC-H LINEITEM.
pub fn lineitem(tuples: usize, seed: u64) -> Relation {
    TpchGenerator::new(TpchConfig {
        lineitem_tuples: tuples,
        distinct_partkeys: (tuples / 8).max(16),
        distinct_suppkeys: (tuples / 150).max(4),
        skew: 0.0,
        seed,
    })
    .lineitem()
}

/// Splits a relation at sensitivity ratio `alpha` over [`SEARCH_ATTR`].
pub fn partition_at_alpha(
    relation: &Relation,
    alpha: f64,
    seed: u64,
) -> Result<PartitionedRelation> {
    let attr = relation.schema().attr_id(SEARCH_ATTR)?;
    let policy = SensitivityAssigner::new(seed).by_value_fraction(relation, attr, alpha)?;
    Partitioner::new(policy).split(relation)
}

/// A fully wired QB deployment ready to answer queries.
pub struct QbDeployment<E: SecureSelectionEngine> {
    /// The trusted owner.
    pub owner: DbOwner,
    /// The untrusted cloud.
    pub cloud: CloudServer,
    /// The QB executor.
    pub executor: QbExecutor<E>,
    /// The partitioned relation it serves.
    pub parts: PartitionedRelation,
}

/// Builds and outsources a QB deployment over `relation` at sensitivity
/// `alpha` using the given back-end engine.
pub fn qb_deployment<E: SecureSelectionEngine>(
    relation: &Relation,
    alpha: f64,
    engine: E,
    network: NetworkModel,
    seed: u64,
) -> Result<QbDeployment<E>> {
    let parts = partition_at_alpha(relation, alpha, seed)?;
    let binning = QueryBinning::build(&parts, SEARCH_ATTR, BinningConfig::default())?;
    let mut executor = QbExecutor::new(binning, engine);
    let mut owner = DbOwner::new(seed.wrapping_add(7));
    let mut cloud = CloudServer::new(network);
    executor.outsource(&mut owner, &mut cloud, &parts)?;
    // Outsourcing costs are not part of per-query measurements.
    cloud.reset_metrics();
    owner.reset_metrics();
    Ok(QbDeployment {
        owner,
        cloud,
        executor,
        parts,
    })
}

impl<E: SecureSelectionEngine> QbDeployment<E> {
    /// Runs a workload of point queries and returns its cost under the
    /// engine's cost profile.
    pub fn run_and_cost(&mut self, queries: &[Value]) -> Result<CostBreakdown> {
        let before_metrics = combined_metrics(&self.cloud, &self.owner);
        let before_comm = self.cloud.comm_time();
        for q in queries {
            self.executor.select(&mut self.owner, &mut self.cloud, q)?;
        }
        let delta = combined_metrics(&self.cloud, &self.owner).delta_since(&before_metrics);
        let profile = self.executor.engine().cost_profile();
        Ok(CostBreakdown {
            computation_sec: pds_systems::cost::computation_time_for_queries(
                &delta,
                &profile,
                queries.len() as u64,
            ),
            communication_sec: self.cloud.comm_time() - before_comm,
            queries: queries.len(),
        })
    }

    /// A uniform workload over the distinct values of the search attribute
    /// (the union of both sides' values).
    pub fn workload(&self, seed: u64) -> Result<QueryWorkload> {
        workload_over(&self.parts, seed)
    }
}

/// Cost of a workload over a sharded deployment: the aggregate (sum over
/// shards, as if one machine did everything) plus the parallel wall-clock
/// estimate (shards are independent machines; the workload finishes when the
/// busiest shard does).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardedCostBreakdown {
    /// Total cost summed over every shard and the owner.
    pub aggregate: CostBreakdown,
    /// Max-over-shards simulated seconds (per-shard computation from that
    /// shard's counters plus that shard's communication time) — the
    /// *modelled* parallel wall-clock.
    pub parallel_sec: f64,
    /// *Measured* wall-clock seconds of the shard fan-out — real elapsed
    /// time of the dispatched bin fetches (threaded: genuinely overlapped
    /// OS threads; sequential: one shard after another).
    pub measured_wall_sec: f64,
    /// Simulated-network wall-clock of the workload's wire traffic: every
    /// frame each shard moved (measured encoded lengths off the wire log),
    /// replayed through the event-driven `pds_proto::NetSim` with one link
    /// per shard, so per-shard transfers genuinely overlap.  Computed for
    /// every transport; [`pds_cloud::BinTransport::Simulated`] additionally
    /// charges its own link model instead of the deployment's.
    pub sim_wall_sec: f64,
    /// Queries answered from the owner-side hot-bin cache (0 unless the
    /// deployment enabled one).
    pub cache_hits: usize,
    /// Owner↔cloud rounds over every episode of the workload (what the
    /// paper's cost model charges as `rounds × latency`): composed
    /// `BinPairRequest` episodes contribute one round each, fine-grained
    /// episodes as many as their back-end's procedure needs.
    pub rounds: u64,
    /// Number of shards the workload ran over.
    pub shards: usize,
}

/// A fully wired sharded QB deployment ready to answer queries.
///
/// Deliberately a sibling of [`QbDeployment`] rather than a generalisation:
/// construction is shared (`partition_at_alpha`, `workload_over`), but the
/// cost accounting differs in kind — per-shard metric deltas and a
/// max-over-shards parallel estimate instead of one server's counters.
pub struct ShardedQbDeployment<E: SecureSelectionEngine> {
    /// The trusted owner.
    pub owner: DbOwner,
    /// The untrusted shards behind their bin router.
    pub router: ShardRouter,
    /// The QB executor (one forked engine per shard).
    pub executor: QbExecutor<E>,
    /// The partitioned relation it serves.
    pub parts: PartitionedRelation,
}

/// Builds and outsources a QB deployment over `relation` at sensitivity
/// `alpha`, sharded over `shards` cloud servers.
pub fn sharded_qb_deployment<E: SecureSelectionEngine>(
    relation: &Relation,
    alpha: f64,
    shards: usize,
    engine: E,
    network: NetworkModel,
    seed: u64,
) -> Result<ShardedQbDeployment<E>> {
    let parts = partition_at_alpha(relation, alpha, seed)?;
    let binning = QueryBinning::build(&parts, SEARCH_ATTR, BinningConfig::default())?;
    let mut executor = QbExecutor::new(binning, engine);
    let mut owner = DbOwner::new(seed.wrapping_add(7));
    let mut router = ShardRouter::new(shards, network, seed)?;
    executor.outsource(&mut owner, &mut router, &parts)?;
    // Outsourcing costs are not part of per-query measurements.
    router.reset_metrics();
    owner.reset_metrics();
    Ok(ShardedQbDeployment {
        owner,
        router,
        executor,
        parts,
    })
}

/// Builds and outsources a **heterogeneous** sharded QB deployment: one
/// explicit boxed engine per shard (shard count = `engines.len()`), so
/// different secure back-ends serve different shards of the same
/// deployment.  Planning consults each shard's engine individually:
/// composed one-round back-ends answer their episodes with a single
/// `BinPairRequest`, multi-round ones run the fine-grained path, side by
/// side in one workload.
pub fn hetero_qb_deployment(
    relation: &Relation,
    alpha: f64,
    engines: Vec<Box<dyn SecureSelectionEngine>>,
    network: NetworkModel,
    seed: u64,
) -> Result<ShardedQbDeployment<Box<dyn SecureSelectionEngine>>> {
    let parts = partition_at_alpha(relation, alpha, seed)?;
    hetero_qb_deployment_over(parts, SEARCH_ATTR, engines, network, seed)
}

/// The general form of [`hetero_qb_deployment`]: an explicit boxed engine
/// per shard over an **already-partitioned** relation and an explicit
/// searchable attribute, so experiments can deploy schemas beyond the
/// TPC-H default (the planner experiment runs the paper's Employee
/// relation through it).
pub fn hetero_qb_deployment_over(
    parts: PartitionedRelation,
    attr: &str,
    engines: Vec<Box<dyn SecureSelectionEngine>>,
    network: NetworkModel,
    seed: u64,
) -> Result<ShardedQbDeployment<Box<dyn SecureSelectionEngine>>> {
    let prototype = engines
        .first()
        .ok_or_else(|| pds_common::PdsError::Config("at least one engine required".into()))?
        .fork();
    let shards = engines.len();
    let binning = QueryBinning::build(&parts, attr, BinningConfig::default())?;
    let mut executor = QbExecutor::new(binning, prototype);
    let mut owner = DbOwner::new(seed.wrapping_add(7));
    let mut router = ShardRouter::new(shards, network, seed)?;
    executor.outsource_with_engines(&mut owner, &mut router, &parts, engines)?;
    // Outsourcing costs are not part of per-query measurements.
    router.reset_metrics();
    owner.reset_metrics();
    Ok(ShardedQbDeployment {
        owner,
        router,
        executor,
        parts,
    })
}

impl<E: SecureSelectionEngine> ShardedQbDeployment<E> {
    /// Runs a workload of point queries sequentially and returns its
    /// aggregate cost plus the max-over-shards parallel estimate.
    pub fn run_and_cost(&mut self, queries: &[Value]) -> Result<ShardedCostBreakdown> {
        self.run_and_cost_with(queries, BinTransport::Sequential)
    }

    /// Runs a workload with the per-shard bin fetches dispatched through
    /// `transport` and returns the modelled costs **plus the measured
    /// wall-clock** of the fan-out ([`BinTransport::Threaded`] overlaps the
    /// shards on real OS threads, so `measured_wall_sec` is an observation,
    /// not an estimate).  The modelled numbers are identical to
    /// [`ShardedQbDeployment::run_and_cost`] — same episodes, same
    /// counters — whatever the transport.
    pub fn run_and_cost_with(
        &mut self,
        queries: &[Value],
        transport: BinTransport,
    ) -> Result<ShardedCostBreakdown> {
        Ok(self.run_and_cost_answers(queries, transport)?.0)
    }

    /// Like [`ShardedQbDeployment::run_and_cost_with`], but also returns the
    /// per-query answers so callers comparing cost **and** correctness (the
    /// planner experiment's byte-identity gate) measure both on the same
    /// run.
    pub fn run_and_cost_answers(
        &mut self,
        queries: &[Value],
        transport: BinTransport,
    ) -> Result<(ShardedCostBreakdown, Vec<Vec<pds_storage::Tuple>>)> {
        let shards = self.router.shard_count();
        let before_owner = *self.owner.metrics();
        let before_shards = self.router.shard_metrics();
        let before_comm: Vec<f64> = self.router.shards().iter().map(|s| s.comm_time()).collect();
        let before_episodes: Vec<usize> = self
            .router
            .shards()
            .iter()
            .map(|s| s.adversarial_view().len())
            .collect();
        // Window the wire log from the current reset epoch: pre-reset
        // traffic (outsourcing uploads) belongs to an earlier measurement
        // window and must never be replayed into this run's sim clock.
        let before_wire: Vec<usize> = self
            .router
            .shards()
            .iter()
            .map(|s| s.wire_log_since_reset().len())
            .collect();
        let run = self.executor.run_workload_transported(
            &mut self.owner,
            &mut self.router,
            queries,
            &transport,
        )?;
        let profile = self.executor.engine().cost_profile();

        let mut aggregate_computation = 0.0;
        let mut parallel_sec = 0.0_f64;
        for (idx, shard) in self.router.shards().iter().enumerate() {
            let delta = shard.metrics().delta_since(&before_shards[idx]);
            let shard_queries = (shard.adversarial_view().len() - before_episodes[idx]) as u64;
            // Heterogeneous deployments run a different back-end per shard:
            // each shard's counters are priced under its own engine's cost
            // profile (identical to the prototype's in the homogeneous
            // case).
            let shard_profile = self
                .executor
                .shard_engines()
                .get(idx)
                .map_or(profile, SecureSelectionEngine::cost_profile);
            let computation = pds_systems::cost::computation_time_for_queries(
                &delta,
                &shard_profile,
                shard_queries,
            );
            let comm = shard.comm_time() - before_comm[idx];
            aggregate_computation += computation;
            parallel_sec = parallel_sec.max(computation + comm);
        }
        // Owner-side work (decryption, token generation) is central, not
        // sharded; it counts toward the aggregate only.
        let owner_delta = self.owner.metrics().delta_since(&before_owner);
        aggregate_computation += pds_systems::cost::computation_time(&owner_delta, &profile);
        let communication_sec = self.router.comm_time() - before_comm.iter().sum::<f64>();

        // Simulated-network wall-clock: the Simulated transport already
        // replayed its traffic; otherwise replay this run's wire-log delta
        // over the deployment's own link model.
        let sim_wall_sec = match run.sim_wall_clock_sec {
            Some(sim) => sim,
            None => {
                let traffic: Vec<Vec<pds_cloud::RoundTrip>> = self
                    .router
                    .shards()
                    .iter()
                    .zip(&before_wire)
                    .map(|(s, &from)| s.wire_log_since_reset()[from..].to_vec())
                    .collect();
                let link = *self.router.shards()[0].network();
                pds_cloud::simulate_wire_traffic(link, &traffic)?.makespan_sec
            }
        };

        Ok((
            ShardedCostBreakdown {
                aggregate: CostBreakdown {
                    computation_sec: aggregate_computation,
                    communication_sec,
                    queries: queries.len(),
                },
                parallel_sec,
                measured_wall_sec: run.wall_clock_sec,
                sim_wall_sec,
                cache_hits: run.cache_hits,
                rounds: run.rounds,
                shards,
            },
            run.answers,
        ))
    }

    /// A uniform workload over the distinct values of the search attribute.
    pub fn workload(&self, seed: u64) -> Result<QueryWorkload> {
        workload_over(&self.parts, seed)
    }
}

/// A uniform workload over the union of both partitions' distinct values of
/// the search attribute.
fn workload_over(parts: &PartitionedRelation, seed: u64) -> Result<QueryWorkload> {
    let attr = parts.nonsensitive.schema().attr_id(SEARCH_ATTR)?;
    let mut all = parts.nonsensitive.distinct_values(attr);
    for v in parts.sensitive.distinct_values(attr) {
        if !all.contains(&v) {
            all.push(v);
        }
    }
    QueryWorkload::explicit(all, seed)
}

/// A fully-encrypted baseline deployment: the *entire* relation goes through
/// the engine (this is the `Cost_crypt(1, D)` denominator of the η model).
pub struct FullEncryptionDeployment<E: SecureSelectionEngine> {
    /// The trusted owner.
    pub owner: DbOwner,
    /// The untrusted cloud.
    pub cloud: CloudServer,
    engine: E,
}

/// Builds and outsources the fully encrypted baseline.
pub fn full_encryption_deployment<E: SecureSelectionEngine>(
    relation: &Relation,
    mut engine: E,
    network: NetworkModel,
    seed: u64,
) -> Result<FullEncryptionDeployment<E>> {
    let attr = relation.schema().attr_id(SEARCH_ATTR)?;
    let mut owner = DbOwner::new(seed.wrapping_add(13));
    let mut cloud = CloudServer::new(network);
    engine.outsource(&mut owner, &mut cloud, relation, attr)?;
    cloud.reset_metrics();
    owner.reset_metrics();
    Ok(FullEncryptionDeployment {
        owner,
        cloud,
        engine,
    })
}

impl<E: SecureSelectionEngine> FullEncryptionDeployment<E> {
    /// Runs point queries (one value each) over the fully encrypted data and
    /// returns their cost under the engine's profile.
    pub fn run_and_cost(&mut self, queries: &[Value]) -> Result<CostBreakdown> {
        let before_metrics = combined_metrics(&self.cloud, &self.owner);
        let before_comm = self.cloud.comm_time();
        for q in queries {
            self.engine
                .select(&mut self.owner, &mut self.cloud, std::slice::from_ref(q))?;
        }
        let delta = combined_metrics(&self.cloud, &self.owner).delta_since(&before_metrics);
        let profile = self.engine.cost_profile();
        Ok(CostBreakdown {
            computation_sec: pds_systems::cost::computation_time_for_queries(
                &delta,
                &profile,
                queries.len() as u64,
            ),
            communication_sec: self.cloud.comm_time() - before_comm,
            queries: queries.len(),
        })
    }
}

/// Scales a measured cost from an `actual`-tuple dataset to a `modelled`
/// dataset size, assuming the dominant costs scale linearly with the number
/// of tuples processed (true for every full-scan back-end).
pub fn scale_cost(
    cost: CostBreakdown,
    actual_tuples: usize,
    modelled_tuples: usize,
) -> CostBreakdown {
    if actual_tuples == 0 {
        return cost;
    }
    let f = modelled_tuples as f64 / actual_tuples as f64;
    CostBreakdown {
        computation_sec: cost.computation_sec * f,
        communication_sec: cost.communication_sec * f,
        queries: cost.queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_systems::NonDetScanEngine;

    #[test]
    fn qb_deployment_answers_queries_and_costs_them() {
        let rel = lineitem(2_000, 3);
        let mut dep = qb_deployment(
            &rel,
            0.3,
            NonDetScanEngine::new(),
            NetworkModel::paper_wan(),
            1,
        )
        .unwrap();
        let queries = dep.workload(5).unwrap().draw(10);
        let cost = dep.run_and_cost(&queries).unwrap();
        assert!(cost.total_sec() > 0.0);
        assert!(cost.per_query_sec() > 0.0);
        assert_eq!(cost.queries, 10);
    }

    #[test]
    fn full_encryption_costs_more_than_qb_at_low_alpha() {
        let rel = lineitem(2_000, 4);
        let queries: Vec<Value> = {
            let attr = rel.schema().attr_id(SEARCH_ATTR).unwrap();
            rel.distinct_values(attr).into_iter().take(5).collect()
        };
        let mut qb = qb_deployment(
            &rel,
            0.1,
            NonDetScanEngine::new(),
            NetworkModel::paper_wan(),
            2,
        )
        .unwrap();
        let qb_cost = qb.run_and_cost(&queries).unwrap();
        let mut full =
            full_encryption_deployment(&rel, NonDetScanEngine::new(), NetworkModel::paper_wan(), 2)
                .unwrap();
        let full_cost = full.run_and_cost(&queries).unwrap();
        assert!(
            qb_cost.computation_sec < full_cost.computation_sec,
            "QB at α=0.1 should compute less than full encryption: {} vs {}",
            qb_cost.computation_sec,
            full_cost.computation_sec
        );
    }

    #[test]
    fn sharded_deployment_matches_single_server_answers() {
        let rel = lineitem(1_200, 9);
        let mut single = qb_deployment(
            &rel,
            0.3,
            NonDetScanEngine::new(),
            NetworkModel::paper_wan(),
            1,
        )
        .unwrap();
        let mut sharded = sharded_qb_deployment(
            &rel,
            0.3,
            4,
            NonDetScanEngine::new(),
            NetworkModel::paper_wan(),
            1,
        )
        .unwrap();
        let queries = single.workload(5).unwrap().draw(12);
        for q in &queries {
            let mut a: Vec<u64> = single
                .executor
                .select(&mut single.owner, &mut single.cloud, q)
                .unwrap()
                .iter()
                .map(|t| t.id.raw())
                .collect();
            let mut b: Vec<u64> = sharded
                .executor
                .select(&mut sharded.owner, &mut sharded.router, q)
                .unwrap()
                .iter()
                .map(|t| t.id.raw())
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "answers diverge for {q}");
        }
    }

    #[test]
    fn sharded_cost_parallel_bounded_by_aggregate() {
        let rel = lineitem(1_200, 10);
        let mut dep = sharded_qb_deployment(
            &rel,
            0.3,
            4,
            NonDetScanEngine::new(),
            NetworkModel::paper_wan(),
            2,
        )
        .unwrap();
        let queries = dep.workload(6).unwrap().draw(16);
        let cost = dep.run_and_cost(&queries).unwrap();
        assert_eq!(cost.shards, 4);
        assert_eq!(cost.aggregate.queries, 16);
        assert!(cost.parallel_sec > 0.0);
        assert!(
            cost.parallel_sec <= cost.aggregate.total_sec() + 1e-9,
            "parallel estimate {} must not exceed aggregate {}",
            cost.parallel_sec,
            cost.aggregate.total_sec()
        );
        assert!(cost.measured_wall_sec > 0.0, "sequential run is timed too");
        assert!(
            cost.sim_wall_sec > 0.0,
            "wire replay must advance the sim clock"
        );
    }

    #[test]
    fn threaded_transport_reports_same_model_and_a_measured_wall_clock() {
        let rel = lineitem(1_200, 10);
        let build = || {
            sharded_qb_deployment(
                &rel,
                0.3,
                4,
                NonDetScanEngine::new(),
                NetworkModel::paper_wan(),
                2,
            )
            .unwrap()
        };
        let mut seq_dep = build();
        let queries = seq_dep.workload(6).unwrap().draw(16);
        let seq = seq_dep
            .run_and_cost_with(&queries, BinTransport::Sequential)
            .unwrap();
        let mut thr_dep = build();
        let thr = thr_dep
            .run_and_cost_with(&queries, BinTransport::Threaded)
            .unwrap();
        // The modelled costs are transport-independent (same episodes, same
        // counters); only the measured wall-clock differs.
        assert!((seq.parallel_sec - thr.parallel_sec).abs() < 1e-12);
        assert!((seq.aggregate.total_sec() - thr.aggregate.total_sec()).abs() < 1e-12);
        assert!(thr.measured_wall_sec > 0.0);
        // The simulated-network clock replays the same per-shard wire
        // traffic whatever the transport, so it is transport-independent
        // too (frame lengths depend only on the outsourced data and the
        // query stream, both identical across the two deployments).
        assert!(
            (seq.sim_wall_sec - thr.sim_wall_sec).abs() < 1e-12,
            "sim clock diverged: {} vs {}",
            seq.sim_wall_sec,
            thr.sim_wall_sec
        );
    }

    #[test]
    fn scale_cost_is_linear() {
        let c = CostBreakdown {
            computation_sec: 1.0,
            communication_sec: 0.5,
            queries: 1,
        };
        let scaled = scale_cost(c, 100, 1000);
        assert!((scaled.computation_sec - 10.0).abs() < 1e-9);
        assert!((scaled.communication_sec - 5.0).abs() < 1e-9);
        assert_eq!(scale_cost(c, 0, 10), c);
    }
}
