//! §VI — hardening a weak indexable back-end (Arx) with QB, plus the §I/§V
//! headline cost numbers.
//!
//! The paper's claim: Arx alone is efficient (β ≈ 1.4–2.5) but susceptible
//! to the output-size, frequency-count and workload-skew attacks; running
//! the same Arx index underneath QB defeats all three (at the price of up to
//! |SB| index traversals per query).

use pds_adversary::{
    check_partitioned_security, size_attack::SizeAttackGroundTruth, SizeAttack, WorkloadSkewAttack,
};
use pds_cloud::NetworkModel;
use pds_common::{Result, Value};
use pds_core::executor::NaivePartitionedExecutor;
use pds_systems::ArxEngine;
use pds_workload::{QueryWorkload, TpchConfig, TpchGenerator, Zipf};

use crate::deploy::{partition_at_alpha, qb_deployment, SEARCH_ATTR};

/// Attack success measures for one configuration (with or without QB).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackOutcome {
    /// Whether QB was in force.
    pub with_qb: bool,
    /// Size attack: rate at which per-query output sizes reveal the exact
    /// sensitive count of the queried value.
    pub size_attack_exact_rate: f64,
    /// Size attack: fraction of query pairs distinguishable by output size.
    pub size_distinguishable_rate: f64,
    /// Workload-skew attack: rate at which the popularity alignment links
    /// the hot query values to the right retrieval fingerprints.
    pub skew_attack_hit_rate: f64,
    /// Mean number of values hidden behind one retrieval fingerprint.
    pub skew_anonymity_set: f64,
    /// Whether the recorded adversarial view satisfies the partitioned data
    /// security definition.
    pub partitioned_security_holds: bool,
}

/// A skewed relation for the attack experiments: a few heavy-hitter part
/// keys dominate.
fn skewed_relation(tuples: usize, seed: u64) -> pds_storage::Relation {
    TpchGenerator::new(TpchConfig {
        lineitem_tuples: tuples,
        distinct_partkeys: (tuples / 20).max(8),
        distinct_suppkeys: 8,
        skew: 1.1,
        seed,
    })
    .lineitem()
}

/// Runs the skewed query workload against Arx *without* QB (naive
/// partitioned execution) and mounts the attacks.
pub fn arx_without_qb(
    tuples: usize,
    queries: usize,
    alpha: f64,
    seed: u64,
) -> Result<AttackOutcome> {
    let relation = skewed_relation(tuples, seed);
    let parts = partition_at_alpha(&relation, alpha, seed)?;
    let mut naive = NaivePartitionedExecutor::new(SEARCH_ATTR, ArxEngine::new());
    let mut owner = pds_cloud::DbOwner::new(seed);
    let mut cloud = pds_cloud::CloudServer::new(NetworkModel::paper_wan());
    naive.outsource(&mut owner, &mut cloud, &parts)?;

    let attr = relation.schema().attr_id(SEARCH_ATTR)?;
    let workload = QueryWorkload::zipf(&relation, attr, 1.1, seed)?;
    let issued = attack_workload(&workload, queries);
    for value in &issued {
        naive.select(&mut owner, &mut cloud, value)?;
    }
    Ok(evaluate(&cloud, &parts, attr, &issued, &workload, false))
}

/// Runs the same workload through QB + Arx and mounts the same attacks.
pub fn arx_with_qb(tuples: usize, queries: usize, alpha: f64, seed: u64) -> Result<AttackOutcome> {
    let relation = skewed_relation(tuples, seed);
    let mut dep = qb_deployment(
        &relation,
        alpha,
        ArxEngine::new(),
        NetworkModel::paper_wan(),
        seed,
    )?;
    let attr = relation.schema().attr_id(SEARCH_ATTR)?;
    let workload = QueryWorkload::zipf(&relation, attr, 1.1, seed)?;
    let issued = attack_workload(&workload, queries);
    for value in &issued {
        dep.executor.select(&mut dep.owner, &mut dep.cloud, value)?;
    }
    Ok(evaluate(
        &dep.cloud, &dep.parts, attr, &issued, &workload, true,
    ))
}

/// The adversary "observes many queries" (§II): the attack workload covers
/// every distinct value at least once (so the surviving-matches analysis is
/// meaningful) and then follows the skewed popularity distribution.
fn attack_workload(workload: &QueryWorkload, skewed_queries: usize) -> Vec<Value> {
    let mut issued = workload.exhaustive();
    issued.extend(workload.draw(skewed_queries));
    issued
}

fn evaluate(
    cloud: &pds_cloud::CloudServer,
    parts: &pds_storage::PartitionedRelation,
    attr: pds_common::AttrId,
    issued: &[Value],
    workload: &QueryWorkload,
    with_qb: bool,
) -> AttackOutcome {
    let view = cloud.adversarial_view();
    // Size attack ground truth: per-value sensitive tuple counts.
    let stats = parts.sensitive.attribute_stats(attr);
    let truth = SizeAttackGroundTruth {
        queried_values: issued.to_vec(),
        sensitive_counts: stats.iter().map(|(v, c)| (v.clone(), c)).collect(),
    };
    let size = SizeAttack::run(view, &truth);
    let skew = WorkloadSkewAttack::run(view, workload.values(), issued);
    let report = check_partitioned_security(view);
    AttackOutcome {
        with_qb,
        size_attack_exact_rate: size.exact_rate,
        size_distinguishable_rate: size.distinguishable_pair_rate,
        skew_attack_hit_rate: skew.hit_rate,
        skew_anonymity_set: skew.mean_anonymity_set,
        partitioned_security_holds: report.is_secure(),
    }
}

/// The §I / §V headline numbers: one selection over the full dataset with
/// each technique (no QB), in simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadlineRow {
    /// Technique name.
    pub technique: &'static str,
    /// Modelled dataset size in tuples.
    pub tuples: usize,
    /// Simulated seconds for one selection.
    pub seconds: f64,
}

/// Computes the headline comparison (Opaque 89 s vs Jana 1051 s vs
/// clear-text fractions of a millisecond).
pub fn headline() -> Vec<HeadlineRow> {
    let rows = [
        (
            "cleartext-index",
            6_000_000usize,
            pds_systems::CostProfile::cleartext(),
        ),
        ("opaque", 6_000_000, pds_systems::CostProfile::opaque()),
        ("jana", 1_000_000, pds_systems::CostProfile::jana()),
        (
            "secret-sharing",
            6_000_000,
            pds_systems::CostProfile::secret_sharing(),
        ),
    ];
    rows.iter()
        .map(|(name, tuples, profile)| {
            let seconds = match *name {
                // Index-based cleartext search touches only the matching
                // tuples (~selectivity of 1/distinct).
                "cleartext-index" => {
                    profile.per_query_fixed_sec
                        + profile.per_index_lookup_sec
                        + 300.0 * profile.per_plaintext_tuple_sec
                }
                _ => profile.per_query_fixed_sec + *tuples as f64 * profile.per_encrypted_tuple_sec,
            };
            HeadlineRow {
                technique: name,
                tuples: *tuples,
                seconds,
            }
        })
        .collect()
}

/// Sanity helper shared with tests: the Zipf sampler used by the attack
/// experiments (re-exported so benches can build identical workloads).
pub fn attack_zipf(n: usize) -> Zipf {
    Zipf::new(n.max(1), 1.1).expect("fixed exponent and non-empty domain are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qb_defeats_attacks_that_succeed_without_it() {
        let without = arx_without_qb(1_200, 60, 0.4, 41).unwrap();
        let with = arx_with_qb(1_200, 60, 0.4, 41).unwrap();

        // Without QB the adversary distinguishes queries by size and the
        // view violates partitioned data security.
        assert!(without.size_distinguishable_rate > 0.3, "{without:?}");
        assert!(!without.partitioned_security_holds);

        // With QB sizes are uniform, fingerprints hide several values and
        // the security definition holds.
        assert!(with.size_distinguishable_rate < 1e-9, "{with:?}");
        assert!(with.partitioned_security_holds);
        assert!(with.skew_anonymity_set >= without.skew_anonymity_set);
        assert!(with.size_attack_exact_rate <= without.size_attack_exact_rate);
    }

    #[test]
    fn headline_matches_paper_order_of_magnitude() {
        let rows = headline();
        let get = |n: &str| rows.iter().find(|r| r.technique == n).unwrap().seconds;
        assert!((get("opaque") - 89.0).abs() < 5.0);
        assert!((get("jana") - 1051.0).abs() < 10.0);
        assert!(get("cleartext-index") < 1e-3);
        assert!(get("secret-sharing") > 10.0);
    }

    #[test]
    fn attack_zipf_is_skewed() {
        let z = attack_zipf(50);
        assert!(z.pmf(0) > z.pmf(49));
    }
}
