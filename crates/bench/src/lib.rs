//! # pds-bench
//!
//! Experiment drivers regenerating every table and figure of the paper's
//! evaluation (§V, §VI), shared between the `experiments` binary (which
//! prints the same rows/series the paper reports) and the Criterion
//! benchmarks under `benches/`.
//!
//! | Driver | Paper artifact |
//! |---|---|
//! | [`fig6a`] | Figure 6a — analytical η vs γ for several sensitivity ratios |
//! | [`fig6b`] | Figure 6b — measured η vs α for three dataset sizes |
//! | [`fig6c`] | Figure 6c — retrieval time vs bin-size imbalance |
//! | [`table6`] | Table VI — QB composed with Opaque and Jana at 1–60 % sensitivity |
//! | [`attacks`] | §VI — Arx hardening (size / frequency / workload-skew attacks with and without QB) and the §I/§V headline numbers |
//! | [`sharded`] | beyond the paper — shard-scaling: the same workload over 1/2/4/8 bin-routed cloud shards, modelled *and* measured (threaded fan-out) |
//! | [`zipf`] | beyond the paper — Zipf-skewed workloads × owner-side hot-bin cache sizes: hit rate and bytes moved vs skew |
//! | [`wire`] | beyond the paper — wire-protocol sweep: byte-accurate bytes moved and the event-simulated network wall-clock over latency × bandwidth × shards, plus the composed-vs-fine-grained rounds gate |
//! | [`hetero`] | beyond the paper — heterogeneous shards: a different secure back-end per shard, exact answers and per-shard + composed security |
//! | [`planner`] | beyond the paper — the cost-based optimizer: measured calibration, per-shard engine choice under the workload-skew advantage constraint, residual pushdown; gated on beating every equally-secure homogeneous deployment |
//! | [`rwmix`] | beyond the paper — read/write mixes over the Employee workload driving cache invalidation on insert under load |
//! | [`service`] | beyond the paper — real TCP shard daemons: concurrent multi-tenant owners in a closed loop, throughput vs worker-pool size with p50/p99 latency, gated on exact answers and composed security |
//! | [`pipeline`] | beyond the paper — pipelined wire dispatch vs lock-step over the same daemons: correlated in-flight windows, gated on strictly faster wall-clock, shrinking blocked-read self-time, identical answers, intact security, buffer-pool reuse and v1 frame compatibility |
//!
//! [`deploy`] holds the shared machinery: building a partitioned TPC-H-like
//! deployment (single-server or sharded) at a target sensitivity ratio,
//! running workloads, and converting work counters into simulated seconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod deploy;
pub mod fig6a;
pub mod fig6b;
pub mod fig6c;
pub mod hetero;
pub mod pipeline;
pub mod planner;
pub mod rwmix;
pub mod service;
pub mod sharded;
pub mod table6;
pub mod wire;
pub mod zipf;
