//! Heterogeneous-shard experiment: a different secure back-end per shard.
//!
//! The sharded deployments of earlier experiments fork one engine kind
//! across every shard.  This experiment runs a genuinely **mixed** fleet —
//! by default deterministic-index, No-Ind scan, Arx counter tokens and the
//! Opaque simulator, cycled over the shards — against the exhaustive
//! workload, and checks end to end that heterogeneity is invisible to the
//! application and to the security definition:
//!
//! * answers are **byte-identical** to a homogeneous single-server
//!   baseline;
//! * partitioned data security holds on **every shard's own view** and on
//!   the **composed** coalition view;
//! * composed-capable shards really answer in one round per episode
//!   (visible in their per-shard `BinPairRequest` frame counters), while
//!   multi-round back-ends run fine-grained on the same workload.

use pds_adversary::check_sharded_partitioned_security;
use pds_cloud::{msg_tag, BinTransport, NetworkModel};
use pds_common::{PdsError, Result};
use pds_storage::Tuple;
use pds_systems::{
    oblivious, ArxEngine, DeterministicIndexEngine, NonDetScanEngine, SecureSelectionEngine,
};

use crate::deploy::{hetero_qb_deployment, lineitem, qb_deployment};

/// Per-shard observations of one heterogeneous run.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroShard {
    /// Shard index.
    pub shard: usize,
    /// Name of the back-end serving this shard.
    pub engine: &'static str,
    /// Whether this back-end answers composed one-round episodes.
    pub composed: bool,
    /// Episodes this shard served.
    pub episodes: usize,
    /// Owner↔cloud rounds this shard served.
    pub rounds: u64,
    /// Composed `BinPairRequest` frames this shard saw.
    pub bin_pair_frames: u64,
    /// Bytes this shard moved (measured frame lengths).
    pub bytes: u64,
}

/// The outcome of one heterogeneous-shard run.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroOutcome {
    /// Shards in the deployment.
    pub shards: usize,
    /// Queries executed (exhaustive workload).
    pub queries: usize,
    /// Distinct back-end kinds deployed.
    pub distinct_engines: usize,
    /// Per-shard observations.
    pub per_shard: Vec<HeteroShard>,
    /// Whether every answer was byte-identical to the homogeneous
    /// single-server baseline.
    pub exact: bool,
    /// Whether partitioned data security held per shard and composed.
    pub secure: bool,
    /// Whether every composed-capable shard served all its episodes as
    /// one-round `BinPairRequest`s and every multi-round shard served none.
    pub paths_consistent: bool,
}

impl HeteroOutcome {
    /// The gate `experiments hetero` enforces.
    pub fn holds(&self) -> bool {
        self.exact && self.secure && self.paths_consistent && self.distinct_engines >= 2
    }
}

/// The default mixed fleet, cycled over `shards` shards: two one-round
/// composed back-ends interleaved with two multi-round ones.
pub fn default_engines(shards: usize) -> Vec<Box<dyn SecureSelectionEngine>> {
    (0..shards)
        .map(|i| -> Box<dyn SecureSelectionEngine> {
            match i % 4 {
                0 => Box::new(DeterministicIndexEngine::new()),
                1 => Box::new(NonDetScanEngine::new()),
                2 => Box::new(ArxEngine::new()),
                _ => Box::new(oblivious::opaque_sim()),
            }
        })
        .collect()
}

/// Answers as sorted encoded tuples, for byte-level comparison.
fn answer_bytes(answers: &[Vec<Tuple>]) -> Vec<Vec<Vec<u8>>> {
    answers
        .iter()
        .map(|ts| {
            let mut out: Vec<Vec<u8>> = ts.iter().map(Tuple::encode).collect();
            out.sort();
            out
        })
        .collect()
}

/// Runs the mixed-engine deployment over `shards` shards of a
/// `tuples`-row pseudo-TPC-H relation on the exhaustive workload and
/// compares it end to end against a homogeneous single-server baseline.
pub fn run(tuples: usize, shards: usize, seed: u64) -> Result<HeteroOutcome> {
    if shards < 2 {
        return Err(PdsError::Config(
            "a heterogeneous deployment needs at least 2 shards".into(),
        ));
    }
    let relation = lineitem(tuples, seed);

    // Homogeneous single-server baseline for the reference answers.
    let mut baseline = qb_deployment(
        &relation,
        0.3,
        NonDetScanEngine::new(),
        NetworkModel::paper_wan(),
        seed,
    )?;
    let workload = baseline.workload(seed.wrapping_add(1))?.exhaustive();
    let expected: Vec<Vec<Vec<u8>>> = workload
        .iter()
        .map(|v| {
            let ts = baseline
                .executor
                .select(&mut baseline.owner, &mut baseline.cloud, v)?;
            let mut enc: Vec<Vec<u8>> = ts.iter().map(Tuple::encode).collect();
            enc.sort();
            Ok(enc)
        })
        .collect::<Result<_>>()?;

    // The heterogeneous deployment under test.
    let mut dep = hetero_qb_deployment(
        &relation,
        0.3,
        default_engines(shards),
        NetworkModel::paper_wan(),
        seed,
    )?;
    let before = dep.router.shard_metrics();
    let run = dep.executor.run_workload_transported(
        &mut dep.owner,
        &mut dep.router,
        &workload,
        &BinTransport::Sequential,
    )?;
    let exact = answer_bytes(&run.answers) == expected;
    let secure = check_sharded_partitioned_security(&dep.router.adversarial_views()).is_secure();

    let mut per_shard = Vec::with_capacity(shards);
    let mut paths_consistent = true;
    for (idx, shard) in dep.router.shards().iter().enumerate() {
        let engine = &dep.executor.shard_engines()[idx];
        let delta = shard.metrics().delta_since(&before[idx]);
        let episodes = shard.adversarial_view().len();
        let composed = engine.composes_episodes();
        let bin_pair_frames = delta.frames_of_type(msg_tag::BIN_PAIR_REQUEST);
        // Composed shards answer every episode in exactly one round (one
        // BinPairRequest frame per episode); fine-grained shards never
        // move a BinPairRequest frame and need more than one round per
        // episode.
        paths_consistent &= if composed {
            bin_pair_frames as usize == episodes && delta.round_trips as usize == episodes
        } else {
            bin_pair_frames == 0 && (episodes == 0 || delta.round_trips as usize > episodes)
        };
        per_shard.push(HeteroShard {
            shard: idx,
            engine: engine.name(),
            composed,
            episodes,
            rounds: delta.round_trips,
            bin_pair_frames,
            bytes: delta.total_bytes(),
        });
    }
    let mut names: Vec<&'static str> = per_shard.iter().map(|s| s.engine).collect();
    names.sort_unstable();
    names.dedup();

    Ok(HeteroOutcome {
        shards,
        queries: workload.len(),
        distinct_engines: names.len(),
        per_shard,
        exact,
        secure,
        paths_consistent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_fleet_is_exact_secure_and_splits_paths() {
        let outcome = run(1_200, 4, 42).unwrap();
        assert_eq!(outcome.shards, 4);
        assert_eq!(outcome.per_shard.len(), 4);
        assert!(outcome.queries > 0);
        assert!(outcome.exact, "{outcome:?}");
        assert!(outcome.secure, "{outcome:?}");
        assert!(outcome.paths_consistent, "{outcome:?}");
        assert_eq!(outcome.distinct_engines, 4);
        assert!(outcome.holds());
        // The default fleet cycles det-index, nondet-scan, arx, opaque-sim.
        let names: Vec<&str> = outcome.per_shard.iter().map(|s| s.engine).collect();
        assert_eq!(
            names,
            vec!["det-index", "nondet-scan", "arx-index", "opaque-sim"]
        );
        // Every shard served some episodes and the whole workload is
        // accounted for.
        let episodes: usize = outcome.per_shard.iter().map(|s| s.episodes).sum();
        assert_eq!(episodes, outcome.queries);
        // Composed shards moved BinPairRequest frames; fine-grained none.
        for s in &outcome.per_shard {
            if s.composed {
                assert!(s.bin_pair_frames > 0, "{s:?}");
            } else {
                assert_eq!(s.bin_pair_frames, 0, "{s:?}");
            }
        }
    }

    #[test]
    fn single_shard_is_rejected() {
        assert!(run(800, 1, 42).is_err());
    }

    #[test]
    fn default_fleet_cycles_and_mixes() {
        let engines = default_engines(6);
        assert_eq!(engines.len(), 6);
        assert_eq!(engines[0].name(), engines[4].name());
        assert!(engines[0].composes_episodes());
        assert!(!engines[1].composes_episodes());
    }
}
