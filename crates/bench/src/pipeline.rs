//! The pipelined-dispatch experiment: lock-step vs pipelined wire
//! disciplines over identical loopback shard daemons.
//!
//! Both arms run the identical multi-pass Employee workload through the
//! same tenant deployment against the same daemons; only the
//! [`WireMode`] differs.  Lock-step writes one `BinPairRequest` and
//! blocks for its answer before writing the next; pipelined dispatch
//! enqueues a whole window of correlated requests per shard (vectored
//! writes, one flush), then demuxes the responses by correlation id in
//! whatever order the daemon's workers finish them.
//!
//! The gate (`experiments pipeline`) requires, at `>= 2` shards:
//!
//! * **strictly faster** — pipelined wall-clock below lock-step;
//! * **shrinking blocked time** — the `wire.call` span (client blocked
//!   on a response read) must have *less self-time* in the pipelined
//!   arm, proving the win comes from overlapping round trips rather
//!   than moving the wait elsewhere;
//! * **byte-identical answers** — both arms equal the in-process
//!   threaded reference;
//! * **security intact** — per-shard and composed partitioned-security
//!   checks pass after the daemons hand their servers back;
//! * **hot-path reuse** — the `pds-proto` buffer pool served codec
//!   buffers from its free list (`pds_wire_buf_reuse_total` hits > 0);
//! * **version compatibility** — a legacy v1 frame (no correlation id)
//!   still decodes through the v2 codec, and a v2 frame round-trips its
//!   correlation id.
//!
//! Pool counters are flushed into the *experiment's own* metrics
//! [`Registry`] — never the daemons' (their stats snapshots are gated
//! byte-stable across identical runs, and pool reuse depends on thread
//! scheduling).

use std::net::SocketAddr;
use std::time::Instant;

use pds_adversary::check_sharded_partitioned_security;
use pds_cloud::{
    BinRoutedCloud, BinTransport, CloudServer, DbOwner, NetworkModel, ServiceConfig, ShardDaemon,
    ShardRouter, TcpCloudClient,
};
use pds_common::{PdsError, Result, Value};
use pds_core::{BinningConfig, QbExecutor, QueryBinning, WireMode};
use pds_obs::Registry;
use pds_proto::{
    crc32, decode_frame_corr, frame::MAGIC, pool_stats, Hello, PoolStats, WireMessage, HEADER_LEN,
    VERSION_V1,
};
use pds_storage::{Partitioner, Tuple};
use pds_systems::DeterministicIndexEngine;
use pds_workload::{employee_relation, employee_sensitivity_policy};

/// Everything `experiments pipeline` prints and gates on.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// Shard daemons both arms fanned out over.
    pub shards: usize,
    /// Point queries per arm run.
    pub queries: usize,
    /// In-flight window of the pipelined arm.
    pub window: usize,
    /// Timed runs per arm (each arm reports its fastest).
    pub reps: usize,
    /// Best lock-step wall-clock over the reps, in seconds.
    pub lock_step_sec: f64,
    /// Best pipelined wall-clock over the reps, in seconds.
    pub pipelined_sec: f64,
    /// Best (lowest) per-rep `wire.call` self-time (client blocked on a
    /// response read) over the lock-step reps, in nanoseconds.
    pub wire_call_lock_ns: u64,
    /// Best per-rep `wire.call` self-time over the pipelined reps.
    pub wire_call_pipe_ns: u64,
    /// Buffer-pool counter deltas over the whole experiment.
    pub pool: PoolStats,
    /// Whether a hand-rolled v1 frame decoded through the v2 codec and
    /// a v2 frame round-tripped its correlation id.
    pub v1_compat: bool,
    /// Whether every arm's every answer equalled the threaded reference.
    pub exact: bool,
    /// Whether per-shard and composed security held afterwards.
    pub secure: bool,
}

impl PipelineOutcome {
    /// Lock-step wall-clock over pipelined wall-clock.
    pub fn speedup(&self) -> f64 {
        if self.pipelined_sec > 0.0 {
            self.lock_step_sec / self.pipelined_sec
        } else {
            0.0
        }
    }

    /// The full `experiments pipeline` gate.
    pub fn holds(&self) -> bool {
        self.shards >= 2
            && self.exact
            && self.secure
            && self.v1_compat
            && self.pipelined_sec < self.lock_step_sec
            && self.wire_call_pipe_ns < self.wire_call_lock_ns
            && self.pool.hits > 0
    }

    /// Flushes the pool counter deltas as `pds_wire_buf_reuse_total`
    /// series into `registry` (the experiment's own — daemon registries
    /// must stay byte-stable across identical runs).
    pub fn flush_pool_metrics(&self, registry: &Registry) {
        for (event, value) in [
            ("hit", self.pool.hits),
            ("miss", self.pool.misses),
            ("return", self.pool.returns),
            ("reader_grow", self.pool.reader_grows),
        ] {
            registry.counter_set("pds_wire_buf_reuse_total", &[("event", event)], value);
        }
    }
}

/// Proves the frame codec's version compatibility without touching the
/// network: a v2 frame must round-trip its correlation id, and a
/// hand-rolled legacy v1 frame (8-byte header, no correlation id) must
/// still decode — as correlation id 0 — through the same decoder.
pub fn v1_frames_still_decode() -> bool {
    let msg = WireMessage::Hello(Hello { tenant: 42 });
    let v2 = match msg.encode_framed(77) {
        Ok(f) => f,
        Err(_) => return false,
    };
    let v2_ok = matches!(
        decode_frame_corr(&v2),
        Ok((_, 77, payload)) if payload == &v2[HEADER_LEN..v2.len() - 4]
    );

    let payload = &v2[HEADER_LEN..v2.len() - 4];
    let mut v1 = Vec::with_capacity(payload.len() + 12);
    v1.extend_from_slice(&MAGIC);
    v1.push(VERSION_V1);
    v1.push(v2[3]); // same message type
    v1.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    v1.extend_from_slice(payload);
    let crc = crc32(&v1);
    v1.extend_from_slice(&crc.to_be_bytes());
    let v1_ok = match decode_frame_corr(&v1) {
        Ok((ty, corr, body)) => ty == v2[3] && corr == 0 && body == payload,
        Err(_) => false,
    };
    v2_ok && v1_ok
}

struct Deployment {
    owner: DbOwner,
    router: ShardRouter,
    executor: QbExecutor<DeterministicIndexEngine>,
    workload: Vec<Value>,
    reference: Vec<Vec<Tuple>>,
}

/// One tenant over the Employee workload, repeated `passes` times, with
/// its in-process threaded reference answers recorded.  Cache capacity
/// stays 0 so every repeat pays a full wire round trip in both arms.
fn deployment(shards: usize, passes: usize, seed: u64) -> Result<Deployment> {
    let relation = employee_relation();
    let policy = employee_sensitivity_policy(&relation)?;
    let parts = Partitioner::new(policy).split(&relation)?;
    let attr = parts.sensitive.schema().attr_id("EId")?;
    let mut values = parts.sensitive.distinct_values(attr);
    for v in parts.nonsensitive.distinct_values(attr) {
        if !values.contains(&v) {
            values.push(v);
        }
    }
    let workload: Vec<Value> = values
        .iter()
        .cycle()
        .take(values.len() * passes.max(1))
        .cloned()
        .collect();
    let binning = QueryBinning::build(&parts, "EId", BinningConfig::default())?;
    let mut executor = QbExecutor::new(binning, DeterministicIndexEngine::new()).with_tenant(1);
    let mut owner = DbOwner::new(seed.wrapping_add(1));
    let mut router = ShardRouter::new(shards, NetworkModel::paper_wan(), seed.wrapping_mul(31))?;
    executor.outsource(&mut owner, &mut router, &parts)?;
    let reference = executor
        .run_workload_transported(&mut owner, &mut router, &workload, &BinTransport::Threaded)?
        .answers;
    Ok(Deployment {
        owner,
        router,
        executor,
        workload,
        reference,
    })
}

/// `wire.call` self-time (duration minus direct children) summed over
/// the drained spans of one timed run.
fn wire_call_self_ns(events: &[pds_obs::TraceEvent]) -> u64 {
    use std::collections::HashMap;
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for e in events {
        if e.parent != 0 {
            *child_ns.entry(e.parent).or_insert(0) += e.end_ns.saturating_sub(e.start_ns);
        }
    }
    events
        .iter()
        .filter(|e| e.name == "wire.call")
        .map(|e| {
            let total = e.end_ns.saturating_sub(e.start_ns);
            total.saturating_sub(child_ns.get(&e.id).copied().unwrap_or(0))
        })
        .sum()
}

/// Runs both wire disciplines `reps` times each (alternating, so drift
/// in machine load hits both arms equally) over `shards` daemons and
/// returns the gated outcome.
pub fn run(
    shards: usize,
    passes: usize,
    window: usize,
    reps: usize,
    seed: u64,
) -> Result<PipelineOutcome> {
    let reps = reps.max(1);
    let mut dep = deployment(shards, passes, seed)?;
    let pool_before = pool_stats();

    // Lift the tenant's shard servers into one daemon per shard; two
    // workers so responses can complete out of order without the extra
    // threads contending on the single tenant's server mutex.
    let mut hosted: Vec<Vec<(u64, CloudServer)>> = (0..shards).map(|_| Vec::new()).collect();
    for (s, server) in dep.router.shards_mut().iter_mut().enumerate() {
        hosted[s].push((1, std::mem::take(server)));
    }
    let daemons: Vec<ShardDaemon> = hosted
        .into_iter()
        .enumerate()
        .map(|(s, servers)| {
            ShardDaemon::spawn(servers, ServiceConfig::with_workers(2).with_shard(s as u64))
        })
        .collect::<Result<_>>()?;
    let addrs: Vec<SocketAddr> = daemons.iter().map(ShardDaemon::addr).collect();
    let transport = BinTransport::Tcp(TcpCloudClient::new(1, addrs));

    let was_tracing = pds_obs::tracing_enabled();
    pds_obs::set_tracing(true);
    let mut exact = true;
    let mut lock_step_sec = f64::INFINITY;
    let mut pipelined_sec = f64::INFINITY;
    let mut wire_call_lock_ns = u64::MAX;
    let mut wire_call_pipe_ns = u64::MAX;
    let arm = |dep: &mut Deployment, mode: WireMode| -> Result<(f64, u64, bool)> {
        dep.executor.set_wire_mode(mode);
        let _ = pds_obs::drain();
        let start = Instant::now();
        let run = dep.executor.run_workload_transported(
            &mut dep.owner,
            &mut dep.router,
            &dep.workload.clone(),
            &transport,
        )?;
        let wall = start.elapsed().as_secs_f64();
        let blocked = wire_call_self_ns(&pds_obs::drain().events);
        Ok((wall, blocked, run.answers == dep.reference))
    };
    let result = (|| -> Result<()> {
        for _ in 0..reps {
            let (wall, blocked, ok) = arm(&mut dep, WireMode::LockStep)?;
            lock_step_sec = lock_step_sec.min(wall);
            wire_call_lock_ns = wire_call_lock_ns.min(blocked);
            exact &= ok;
            let (wall, blocked, ok) = arm(&mut dep, WireMode::Pipelined { window })?;
            pipelined_sec = pipelined_sec.min(wall);
            wire_call_pipe_ns = wire_call_pipe_ns.min(blocked);
            exact &= ok;
        }
        Ok(())
    })();
    pds_obs::set_tracing(was_tracing);
    result?;

    // Hand the servers back (with everything the daemons recorded) and
    // check per-shard + composed security over both arms' traffic.
    let mut returned: Vec<Vec<(u64, CloudServer)>> =
        daemons.into_iter().map(ShardDaemon::shutdown).collect();
    for (s, servers) in returned.iter_mut().enumerate() {
        let pos = servers.iter().position(|(id, _)| *id == 1).ok_or_else(|| {
            PdsError::Wire(format!("shard {s} daemon did not return tenant 1's server"))
        })?;
        dep.router.shards_mut()[s] = servers.swap_remove(pos).1;
    }
    let secure = check_sharded_partitioned_security(&dep.router.adversarial_views()).is_secure();

    let pool_after = pool_stats();
    Ok(PipelineOutcome {
        shards,
        queries: dep.workload.len(),
        window,
        reps,
        lock_step_sec,
        pipelined_sec,
        wire_call_lock_ns,
        wire_call_pipe_ns,
        pool: PoolStats {
            hits: pool_after.hits - pool_before.hits,
            misses: pool_after.misses - pool_before.misses,
            returns: pool_after.returns - pool_before.returns,
            reader_grows: pool_after.reader_grows - pool_before.reader_grows,
        },
        v1_compat: v1_frames_still_decode(),
        exact,
        secure,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_core::DEFAULT_PIPELINE_WINDOW;

    #[test]
    fn v1_compat_check_passes_on_the_live_codec() {
        assert!(v1_frames_still_decode());
    }

    #[test]
    fn pipeline_gate_holds_on_a_smoke_run() {
        // The correctness gates must hold on every attempt; the two
        // timing gates get two fresh re-runs because this test executes
        // in debug mode alongside the whole parallel suite, where a
        // scheduler hiccup can invert a close race.  The release-mode
        // `experiments pipeline` gate stays one-shot strict.
        let mut outcome = run(2, 4, DEFAULT_PIPELINE_WINDOW, 3, 42).unwrap();
        for _ in 0..2 {
            assert!(outcome.exact, "answers diverged: {outcome:?}");
            assert!(outcome.secure, "security broke: {outcome:?}");
            assert!(outcome.v1_compat);
            assert!(outcome.pool.hits > 0, "pool never hit: {:?}", outcome.pool);
            if outcome.holds() {
                break;
            }
            outcome = run(2, 4, DEFAULT_PIPELINE_WINDOW, 3, 42).unwrap();
        }
        assert!(outcome.exact, "answers diverged: {outcome:?}");
        assert!(outcome.secure, "security broke: {outcome:?}");
        assert!(outcome.v1_compat);
        assert!(outcome.pool.hits > 0, "pool never hit: {:?}", outcome.pool);
        assert!(
            outcome.pipelined_sec < outcome.lock_step_sec,
            "pipelined {:.6}s !< lock-step {:.6}s",
            outcome.pipelined_sec,
            outcome.lock_step_sec
        );
        assert!(
            outcome.wire_call_pipe_ns < outcome.wire_call_lock_ns,
            "blocked-read self-time must shrink: {} !< {}",
            outcome.wire_call_pipe_ns,
            outcome.wire_call_lock_ns
        );
        assert!(outcome.holds());

        let registry = Registry::new();
        outcome.flush_pool_metrics(&registry);
        let rendered = registry.render(pds_obs::StatsScope::All);
        assert!(rendered.contains("pds_wire_buf_reuse_total"), "{rendered}");
    }
}
