//! Skewed-workload experiment: Zipf query popularity × owner-side hot-bin
//! cache size.
//!
//! The paper's η model assumes uniform query popularity; real workloads are
//! skewed, and skew is exactly where an owner-side [`pds_cloud::BinCache`]
//! pays off: the hot values hammer the same bin pairs, so whole decrypted
//! bins served from the owner's cache skip the cloud round-trip entirely.
//! This experiment sweeps skew exponent `s` × cache capacity and reports,
//! per cell:
//!
//! * the cache **hit rate** (which must grow with `s` at fixed capacity),
//! * the **bytes moved** between owner and cloud (which must shrink), and
//! * whether the cached answers are **byte-identical** to an uncached run
//!   of the same query sequence (they always are — the cache is a pure
//!   owner-side memo, invisible to the application).

use pds_cloud::NetworkModel;
use pds_common::{Result, Value};
use pds_storage::Tuple;
use pds_systems::NonDetScanEngine;
use pds_workload::QueryWorkload;

use crate::deploy::{lineitem, qb_deployment, QbDeployment, SEARCH_ATTR};

/// One cell of the skew × cache-size sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfCachePoint {
    /// Zipf skew exponent of the query workload (0 = uniform).
    pub skew: f64,
    /// Hot-bin cache capacity, in bins (0 = caching disabled).
    pub cache_bins: usize,
    /// Queries executed.
    pub queries: usize,
    /// Pair retrievals served from the owner-side cache.
    pub cache_hits: u64,
    /// Pair retrievals that fetched from the cloud.
    pub cache_misses: u64,
    /// Total bytes moved between owner and cloud over the workload.
    pub total_bytes: u64,
    /// Query episodes the cloud observed (cache hits record none).
    pub episodes: usize,
    /// Whether every answer matched the uncached baseline byte-for-byte.
    pub matches_uncached: bool,
}

impl ZipfCachePoint {
    /// Fraction of pair retrievals served from cache.
    pub fn hit_rate(&self) -> f64 {
        let fetches = self.cache_hits + self.cache_misses;
        if fetches == 0 {
            0.0
        } else {
            self.cache_hits as f64 / fetches as f64
        }
    }
}

/// Answers as sorted encoded tuples, for byte-level comparison.
fn answer_bytes(tuples: &[Tuple]) -> Vec<Vec<u8>> {
    let mut out: Vec<Vec<u8>> = tuples.iter().map(Tuple::encode).collect();
    out.sort();
    out
}

fn deployment(
    relation: &pds_storage::Relation,
    cache_bins: usize,
    seed: u64,
) -> Result<QbDeployment<NonDetScanEngine>> {
    let mut dep = qb_deployment(
        relation,
        0.3,
        NonDetScanEngine::new(),
        NetworkModel::paper_wan(),
        seed,
    )?;
    dep.executor.set_cache_capacity(cache_bins);
    Ok(dep)
}

/// Runs one query sequence through a deployment, returning per-query
/// answers.
fn run_queries(
    dep: &mut QbDeployment<NonDetScanEngine>,
    queries: &[Value],
) -> Result<Vec<Vec<Vec<u8>>>> {
    queries
        .iter()
        .map(|q| {
            dep.executor
                .select(&mut dep.owner, &mut dep.cloud, q)
                .map(|ts| answer_bytes(&ts))
        })
        .collect()
}

/// Sweeps `skews` × `capacities` over a `tuples`-row pseudo-TPC-H relation,
/// `queries` point queries per cell.  For every skew, an uncached baseline
/// run provides the reference answers each cached cell is compared against.
pub fn run(
    tuples: usize,
    skews: &[f64],
    capacities: &[usize],
    queries: usize,
    seed: u64,
) -> Result<Vec<ZipfCachePoint>> {
    let relation = lineitem(tuples, seed);
    let attr = relation.schema().attr_id(SEARCH_ATTR)?;
    let mut out = Vec::with_capacity(skews.len() * capacities.len());
    for &skew in skews {
        let workload = QueryWorkload::zipf(&relation, attr, skew, seed.wrapping_add(1))?;
        let sequence = workload.draw(queries);

        // Uncached baseline: reference answers for this skew.
        let mut baseline_dep = deployment(&relation, 0, seed)?;
        let baseline = run_queries(&mut baseline_dep, &sequence)?;

        for &cache_bins in capacities {
            let mut dep = deployment(&relation, cache_bins, seed)?;
            let answers = run_queries(&mut dep, &sequence)?;
            let stats = dep.executor.cache_stats();
            out.push(ZipfCachePoint {
                skew,
                cache_bins,
                queries: sequence.len(),
                cache_hits: stats.hits,
                cache_misses: stats.misses,
                total_bytes: dep.cloud.metrics().total_bytes(),
                episodes: dep.cloud.adversarial_view().len(),
                matches_uncached: answers == baseline,
            });
        }
    }
    Ok(out)
}

/// The skew exponents the experiment sweeps by default: uniform, moderate
/// skew, and past-classic Zipf.
pub fn default_skews() -> Vec<f64> {
    vec![0.0, 0.8, 1.1]
}

/// The cache capacities (in bins) the experiment sweeps by default.
///
/// Deliberately small: the hit-rate-vs-skew signal lives where the cache
/// cannot hold the whole working set.  Once capacity approaches the
/// deployment's total bin count, even a uniform workload warms every bin
/// and the skew effect washes out (measured on the standard workload:
/// capacity ≳ 8 of ~25 bins already blurs the s = 0.4 vs 0.8 ordering).
pub fn default_capacities() -> Vec<usize> {
    vec![0, 4, 6]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_grows_with_skew_and_answers_match() {
        let points = run(1_600, &[0.0, 0.8, 1.1], &[6], 96, 42).unwrap();
        assert_eq!(points.len(), 3);
        assert!(
            points.iter().all(|p| p.matches_uncached),
            "cached answers diverged: {points:?}"
        );
        assert!(
            points[0].hit_rate() < points[1].hit_rate()
                && points[1].hit_rate() < points[2].hit_rate(),
            "hit rate must grow monotonically with skew: {:?}",
            points
                .iter()
                .map(ZipfCachePoint::hit_rate)
                .collect::<Vec<_>>()
        );
        assert!(
            points[0].total_bytes > points[1].total_bytes
                && points[1].total_bytes > points[2].total_bytes,
            "bytes moved must shrink with skew: {points:?}"
        );
        for p in &points {
            assert_eq!(p.cache_hits + p.cache_misses, p.queries as u64);
            assert_eq!(p.episodes as u64, p.cache_misses, "one episode per miss");
        }
    }

    #[test]
    fn capacity_zero_never_hits() {
        let points = run(1_600, &[1.1], &[0, 16], 48, 42).unwrap();
        assert_eq!(points[0].cache_hits, 0);
        assert_eq!(points[0].cache_misses, 48);
        assert!(points[1].cache_hits > 0, "warm cache must hit at s=1.1");
        assert!(points[1].total_bytes < points[0].total_bytes);
    }

    #[test]
    fn default_sweeps_are_nonempty() {
        assert_eq!(default_skews().len(), 3);
        assert!(default_capacities().contains(&0));
    }
}
