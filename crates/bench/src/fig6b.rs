//! Figure 6b — measured η as a function of sensitivity α for three dataset
//! sizes (150 K, 1.5 M, 4.5 M tuples in the paper).
//!
//! η here is *measured*, not modelled: the same workload is executed once
//! through QB (non-sensitive part in clear-text, sensitive part through the
//! back-end) and once over the fully encrypted relation, and η is the ratio
//! of the two simulated end-to-end costs.  The paper's claim is that η < 1
//! across all three dataset sizes and all α < 1.

use pds_cloud::NetworkModel;
use pds_common::Result;
use pds_systems::NonDetScanEngine;

use crate::deploy::{full_encryption_deployment, lineitem, qb_deployment};

/// One measured point of Figure 6b.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6bPoint {
    /// Dataset size in tuples (the size actually generated).
    pub tuples: usize,
    /// Sensitivity ratio α requested.
    pub alpha: f64,
    /// Measured QB cost per query (seconds, simulated).
    pub qb_sec: f64,
    /// Measured fully-encrypted cost per query (seconds, simulated).
    pub full_sec: f64,
    /// Measured η = qb / full.
    pub eta: f64,
}

/// Runs the Figure 6b experiment.
///
/// * `dataset_sizes` — tuple counts to generate (the paper uses 150 K,
///   1.5 M, 4.5 M; benches use scaled-down sizes);
/// * `alphas` — sensitivity ratios to sweep;
/// * `queries_per_point` — how many point queries to average over.
pub fn run(
    dataset_sizes: &[usize],
    alphas: &[f64],
    queries_per_point: usize,
    seed: u64,
) -> Result<Vec<Fig6bPoint>> {
    let mut out = Vec::new();
    for &tuples in dataset_sizes {
        let relation = lineitem(tuples, seed);
        // The fully encrypted baseline does not depend on α: measure once.
        let mut full = full_encryption_deployment(
            &relation,
            NonDetScanEngine::new(),
            NetworkModel::paper_wan(),
            seed,
        )?;
        let attr = relation.schema().attr_id(crate::deploy::SEARCH_ATTR)?;
        let queries: Vec<_> = relation
            .distinct_values(attr)
            .into_iter()
            .take(queries_per_point)
            .collect();
        let full_cost = full.run_and_cost(&queries)?;

        for &alpha in alphas {
            let mut qb = qb_deployment(
                &relation,
                alpha,
                NonDetScanEngine::new(),
                NetworkModel::paper_wan(),
                seed,
            )?;
            let qb_cost = qb.run_and_cost(&queries)?;
            let eta = pds_core::cost::measured_eta(qb_cost.total_sec(), full_cost.total_sec());
            out.push(Fig6bPoint {
                tuples,
                alpha,
                qb_sec: qb_cost.per_query_sec(),
                full_sec: full_cost.per_query_sec(),
                eta,
            });
        }
    }
    Ok(out)
}

/// The paper's sweep, scaled down by `scale` so it completes quickly
/// (`scale = 1.0` reproduces the paper's 150 K / 1.5 M / 4.5 M sizes).
pub fn paper_run(scale: f64, seed: u64) -> Result<Vec<Fig6bPoint>> {
    let sizes: Vec<usize> = [150_000usize, 1_500_000, 4_500_000]
        .iter()
        .map(|&n| ((n as f64 * scale) as usize).max(200))
        .collect();
    run(&sizes, &[0.1, 0.2, 0.4, 0.6, 0.8, 0.9], 5, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_below_one_for_partial_sensitivity() {
        let pts = run(&[1_500], &[0.2, 0.6], 4, 11).unwrap();
        for p in &pts {
            assert!(
                p.eta < 1.0,
                "η must be < 1 at α={} (got {})",
                p.alpha,
                p.eta
            );
            assert!(p.eta > 0.0);
        }
    }

    #[test]
    fn eta_grows_with_alpha() {
        let pts = run(&[1_500], &[0.1, 0.5, 0.9], 4, 12).unwrap();
        assert!(pts[0].eta < pts[1].eta);
        assert!(pts[1].eta < pts[2].eta);
    }

    #[test]
    fn eta_roughly_stable_across_dataset_sizes() {
        // The paper's point: η stays below 1 irrespective of dataset size.
        let pts = run(&[800, 3_200], &[0.4], 3, 13).unwrap();
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(p.eta < 1.0);
        }
    }
}
