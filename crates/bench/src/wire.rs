//! Wire-protocol experiment: byte-accurate bytes moved and a
//! simulated-network wall-clock, swept over latency × bandwidth × shards.
//!
//! Every owner↔cloud interaction encodes a real `pds-proto` frame, so the
//! bytes column is **measured off the wire** (frame headers, CRC trailers
//! and all), not estimated.  The timing column comes from
//! [`pds_cloud::BinTransport::Simulated`]: the event-driven
//! `pds_proto::NetSim` replays each shard's frame stream over its own link,
//! so per-shard latency genuinely overlaps — simulated time for `N` shards
//! stays well below `N ×` the single-shard time at fixed latency, which is
//! exactly what the thread-based transport could never show for the
//! *network* component (threads only overlap compute).
//!
//! Each cell also re-runs the identical workload on an identical deployment
//! over the in-process [`pds_cloud::BinTransport::Sequential`] transport
//! and compares every answer byte-for-byte, and checks partitioned data
//! security per shard and composed — the wire format and the simulator are
//! pure accounting layers and must change nothing observable.

use pds_adversary::check_sharded_partitioned_security;
use pds_cloud::{BinTransport, NetworkModel};
use pds_common::{Result, Value};
use pds_core::PlanMode;
use pds_storage::Tuple;
use pds_systems::{DeterministicIndexEngine, NonDetScanEngine};

use crate::deploy::{lineitem, sharded_qb_deployment, ShardedQbDeployment};

/// One cell of the latency × bandwidth × shard-count sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WirePoint {
    /// One-way-fixed round-trip latency of the simulated links, in seconds.
    pub latency_sec: f64,
    /// Bandwidth of the simulated links, in megabits per second.
    pub bandwidth_mbps: f64,
    /// Shards the deployment ran over.
    pub shards: usize,
    /// Queries executed (the exhaustive workload, one per distinct value).
    pub queries: usize,
    /// Bytes moved between owner and cloud — measured encoded frame
    /// lengths summed over every exchange of the workload.
    pub wire_bytes: u64,
    /// Wire frames moved (each request and each response is one frame).
    pub wire_frames: u64,
    /// Simulated-network wall-clock of the workload's fan-out: the NetSim
    /// makespan with per-shard links genuinely overlapping.
    pub sim_wall_sec: f64,
    /// Whether every answer was byte-identical to the same workload over
    /// the in-process transport on an identical deployment.
    pub exact: bool,
    /// Whether partitioned data security held on every shard's view and on
    /// the composed view after the exhaustive workload.
    pub secure: bool,
}

/// Per-query answers as sorted encoded tuples, for byte-level comparison.
type EncodedAnswers = Vec<Vec<Vec<u8>>>;

/// One cell's run outcome: answers, simulated clock (when the transport
/// simulates one), and the wire traffic the run moved.
struct CellRun {
    answers: EncodedAnswers,
    sim_wall_sec: Option<f64>,
    wire_bytes: u64,
    wire_frames: u64,
}

/// Answers as sorted encoded tuples, for byte-level comparison.
fn answer_bytes(answers: &[Vec<Tuple>]) -> EncodedAnswers {
    answers
        .iter()
        .map(|ts| {
            let mut out: Vec<Vec<u8>> = ts.iter().map(Tuple::encode).collect();
            out.sort();
            out
        })
        .collect()
}

fn deployment(
    relation: &pds_storage::Relation,
    shards: usize,
    seed: u64,
) -> Result<ShardedQbDeployment<NonDetScanEngine>> {
    sharded_qb_deployment(
        relation,
        0.3,
        shards,
        NonDetScanEngine::new(),
        NetworkModel::paper_wan(),
        seed,
    )
}

/// Runs the exhaustive workload over one deployment through `transport`.
fn run_cell(
    dep: &mut ShardedQbDeployment<NonDetScanEngine>,
    workload: &[Value],
    transport: BinTransport,
) -> Result<CellRun> {
    let before = dep.router.metrics();
    let run = dep.executor.run_workload_transported(
        &mut dep.owner,
        &mut dep.router,
        workload,
        &transport,
    )?;
    let delta = dep.router.metrics().delta_since(&before);
    Ok(CellRun {
        answers: answer_bytes(&run.answers),
        sim_wall_sec: run.sim_wall_clock_sec,
        wire_bytes: delta.total_bytes(),
        wire_frames: delta.wire_frames,
    })
}

/// Sweeps `latencies_sec` × `bandwidths_mbps` × `shard_counts` over a
/// `tuples`-row pseudo-TPC-H relation, running the exhaustive point-query
/// workload (one query per distinct search value) in each cell.
pub fn run(
    tuples: usize,
    latencies_sec: &[f64],
    bandwidths_mbps: &[f64],
    shard_counts: &[usize],
    seed: u64,
) -> Result<Vec<WirePoint>> {
    let relation = lineitem(tuples, seed);
    // The in-process baseline answers depend only on (relation, shards,
    // seed) — never on the simulated link — so run it once per shard
    // count, outside the latency x bandwidth sweep.
    let mut baselines: Vec<(usize, Vec<Value>, EncodedAnswers)> =
        Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        let mut baseline = deployment(&relation, shards, seed)?;
        let workload = baseline.workload(seed.wrapping_add(1))?.exhaustive();
        let expected = run_cell(&mut baseline, &workload, BinTransport::Sequential)?;
        baselines.push((shards, workload, expected.answers));
    }
    let mut out =
        Vec::with_capacity(latencies_sec.len() * bandwidths_mbps.len() * shard_counts.len());
    for &latency_sec in latencies_sec {
        for &bandwidth_mbps in bandwidths_mbps {
            let link = NetworkModel {
                bandwidth_bytes_per_sec: bandwidth_mbps * 1e6 / 8.0,
                latency_sec,
            };
            for (shards, workload, expected) in &baselines {
                let shards = *shards;
                // Simulated-transport run on an identical deployment:
                // answers must be byte-identical to the baseline.
                let mut dep = deployment(&relation, shards, seed)?;
                let cell = run_cell(&mut dep, workload, BinTransport::Simulated(link))?;
                let sim_wall_sec = cell
                    .sim_wall_sec
                    .expect("Simulated transport reports a sim clock");
                let exact = &cell.answers == expected;

                // Partitioned data security after the exhaustive workload,
                // per shard and composed.
                let secure =
                    check_sharded_partitioned_security(&dep.router.adversarial_views()).is_secure();

                out.push(WirePoint {
                    latency_sec,
                    bandwidth_mbps,
                    shards,
                    queries: workload.len(),
                    wire_bytes: cell.wire_bytes,
                    wire_frames: cell.wire_frames,
                    sim_wall_sec,
                    exact,
                    secure,
                });
            }
        }
    }
    Ok(out)
}

/// One row of the composed-vs-fine-grained comparison: the identical
/// exhaustive workload over two identical deployments of a
/// composed-capable back-end, once with every episode forced onto the
/// fine-grained multi-round path and once with the live composed
/// `BinPairRequest` path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundsPoint {
    /// Shards the deployments ran over.
    pub shards: usize,
    /// Queries executed per run.
    pub queries: usize,
    /// Owner↔cloud rounds of the fine-grained run.
    pub rounds_fine: u64,
    /// Owner↔cloud rounds of the composed run.
    pub rounds_composed: u64,
    /// Bytes moved by the fine-grained run (measured frame lengths).
    pub bytes_fine: u64,
    /// Bytes moved by the composed run.
    pub bytes_composed: u64,
    /// `BinPairRequest` frames the fine-grained run moved (must be 0).
    pub bin_pair_frames_fine: u64,
    /// `BinPairRequest` frames the composed run moved (must cover every
    /// episode — this is the metrics-only proof the composed path is live).
    pub bin_pair_frames_composed: u64,
    /// Whether both runs' answers were byte-identical.
    pub exact: bool,
    /// Whether partitioned data security held (per shard and composed) on
    /// both deployments after the exhaustive workload.
    pub secure: bool,
}

fn det_deployment(
    relation: &pds_storage::Relation,
    shards: usize,
    seed: u64,
    mode: PlanMode,
) -> Result<ShardedQbDeployment<DeterministicIndexEngine>> {
    let mut dep = sharded_qb_deployment(
        relation,
        0.3,
        shards,
        DeterministicIndexEngine::new(),
        NetworkModel::paper_wan(),
        seed,
    )?;
    dep.executor.set_plan_mode(mode);
    Ok(dep)
}

/// Runs the composed-vs-fine-grained comparison for each shard count: the
/// same exhaustive workload over identical deterministic-index deployments
/// in both plan modes, reporting rounds, bytes, per-type frame counts, and
/// the exactness/security checks the gate enforces.
pub fn rounds_drop(tuples: usize, shard_counts: &[usize], seed: u64) -> Result<Vec<RoundsPoint>> {
    let relation = lineitem(tuples, seed);
    let mut out = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        let mut cells = Vec::with_capacity(2);
        for mode in [PlanMode::FineGrained, PlanMode::Composed] {
            let mut dep = det_deployment(&relation, shards, seed, mode)?;
            let workload = dep.workload(seed.wrapping_add(1))?.exhaustive();
            let before = dep.router.metrics();
            let run = dep.executor.run_workload_transported(
                &mut dep.owner,
                &mut dep.router,
                &workload,
                &BinTransport::Sequential,
            )?;
            let delta = dep.router.metrics().delta_since(&before);
            let secure =
                check_sharded_partitioned_security(&dep.router.adversarial_views()).is_secure();
            cells.push((
                workload.len(),
                run.rounds,
                delta.total_bytes(),
                delta.frames_of_type(pds_cloud::msg_tag::BIN_PAIR_REQUEST),
                answer_bytes(&run.answers),
                secure,
            ));
        }
        let (queries, rounds_fine, bytes_fine, frames_fine, answers_fine, secure_fine) =
            cells.swap_remove(0);
        let (_, rounds_composed, bytes_composed, frames_composed, answers_composed, secure_comp) =
            cells.swap_remove(0);
        out.push(RoundsPoint {
            shards,
            queries,
            rounds_fine,
            rounds_composed,
            bytes_fine,
            bytes_composed,
            bin_pair_frames_fine: frames_fine,
            bin_pair_frames_composed: frames_composed,
            exact: answers_fine == answers_composed,
            secure: secure_fine && secure_comp,
        });
    }
    Ok(out)
}

/// The gate `experiments wire` enforces on the composed path: byte-identical
/// answers, security preserved, **strictly fewer rounds** than the
/// fine-grained path, no more than `1.1×` its bytes, and — provable from
/// metrics alone — composed `BinPairRequest` frames on the wire in composed
/// mode and none in fine-grained mode.
pub fn rounds_gate_holds(points: &[RoundsPoint]) -> bool {
    !points.is_empty()
        && points.iter().all(|p| {
            p.exact
                && p.secure
                && p.rounds_composed < p.rounds_fine
                && (p.bytes_composed as f64) <= 1.1 * p.bytes_fine as f64
                && p.bin_pair_frames_composed > 0
                && p.bin_pair_frames_fine == 0
        })
}

/// Checks the latency-overlap property the simulator must exhibit: within
/// every (latency, bandwidth) group, the simulated time at `N > 1` shards
/// must stay below `N ×` the single-shard simulated time (independent
/// links overlap; a serial network could only match the product).
pub fn overlap_holds(points: &[WirePoint]) -> bool {
    points.iter().filter(|p| p.shards > 1).all(|p| {
        let single = points.iter().find(|q| {
            q.shards == 1 && q.latency_sec == p.latency_sec && q.bandwidth_mbps == p.bandwidth_mbps
        });
        match single {
            Some(s) => p.sim_wall_sec < p.shards as f64 * s.sim_wall_sec,
            None => true,
        }
    })
}

/// The round-trip latencies the experiment sweeps by default, in seconds.
pub fn default_latencies() -> Vec<f64> {
    vec![0.002, 0.020]
}

/// The link bandwidths the experiment sweeps by default, in Mbps (the
/// paper's 30 Mbps WAN plus a datacenter-class 1 Gbps link).
pub fn default_bandwidths() -> Vec<f64> {
    vec![30.0, 1000.0]
}

/// The shard counts the experiment sweeps by default.
pub fn default_shards() -> Vec<usize> {
    vec![1, 4]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_cells_are_exact_secure_and_overlapping() {
        let points = run(1_200, &[0.01], &[30.0], &[1, 4], 42).unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.exact, "answers diverged: {p:?}");
            assert!(p.secure, "security violated: {p:?}");
            assert!(p.wire_bytes > 0 && p.wire_frames > 0);
            assert!(p.sim_wall_sec > 0.0);
            assert!(p.queries > 0);
        }
        assert!(overlap_holds(&points), "{points:?}");
        // Latency must genuinely overlap: 4 shards moving the same total
        // workload finish far sooner than 4x the single-shard clock.
        assert!(
            points[1].sim_wall_sec < 4.0 * points[0].sim_wall_sec,
            "sim(4 shards) {} !< 4 x sim(1 shard) {}",
            points[1].sim_wall_sec,
            points[0].sim_wall_sec
        );
    }

    #[test]
    fn higher_latency_slows_the_simulated_clock() {
        let points = run(1_200, &[0.001, 0.050], &[100.0], &[2], 42).unwrap();
        assert_eq!(points.len(), 2);
        assert!(
            points[0].sim_wall_sec < points[1].sim_wall_sec,
            "50ms links must be slower than 1ms links: {points:?}"
        );
        // Same deployment, same workload: identical bytes on the wire.
        assert_eq!(points[0].wire_bytes, points[1].wire_bytes);
        assert_eq!(points[0].wire_frames, points[1].wire_frames);
    }

    #[test]
    fn more_bandwidth_speeds_the_simulated_clock() {
        let points = run(1_200, &[0.0], &[10.0, 1000.0], &[2], 42).unwrap();
        assert!(
            points[0].sim_wall_sec > points[1].sim_wall_sec,
            "10 Mbps must be slower than 1 Gbps: {points:?}"
        );
    }

    #[test]
    fn default_sweeps_are_nonempty() {
        assert_eq!(default_latencies().len(), 2);
        assert_eq!(default_bandwidths().len(), 2);
        assert_eq!(default_shards(), vec![1, 4]);
    }

    #[test]
    fn composed_path_drops_rounds_at_identical_answers() {
        let points = rounds_drop(1_200, &[1, 4], 42).unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.exact, "answers diverged: {p:?}");
            assert!(p.secure, "security violated: {p:?}");
            assert!(
                p.rounds_composed < p.rounds_fine,
                "composed must use strictly fewer rounds: {p:?}"
            );
            assert!(
                p.bytes_composed as f64 <= 1.1 * p.bytes_fine as f64,
                "composed bytes blew past 1.1x the baseline: {p:?}"
            );
            // Provable from metrics alone: every composed episode moved one
            // BinPairRequest frame; the fine-grained run moved none.
            assert_eq!(p.bin_pair_frames_fine, 0);
            assert_eq!(p.bin_pair_frames_composed as usize, p.queries);
            // det-index episodes are 2 fine-grained rounds (tag select +
            // plaintext select) vs exactly 1 composed round per query.
            assert_eq!(p.rounds_composed as usize, p.queries);
            assert_eq!(p.rounds_fine as usize, 2 * p.queries);
        }
        assert!(rounds_gate_holds(&points));
        assert!(!rounds_gate_holds(&[]));
        let mut broken = points.clone();
        broken[0].rounds_composed = broken[0].rounds_fine;
        assert!(!rounds_gate_holds(&broken), "gate must catch a non-drop");
    }
}
