//! The TCP service experiment: concurrent multi-tenant owners against
//! real loopback shard daemons.
//!
//! A **closed-loop** load generator — every owner thread issues its next
//! point query only after the previous answer arrived — drives N tenant
//! owners against one [`ShardDaemon`] per shard, sweeping the daemon's
//! worker-pool size.  Each point reports measured throughput (queries per
//! second across all owners) and the p50/p99 per-query latency, and is
//! gated on three correctness checks:
//!
//! * **exact** — every tenant's TCP answers equal its in-process
//!   [`BinTransport::Threaded`] reference answers;
//! * **secure** — after the daemons hand their per-tenant servers back,
//!   every tenant's composed adversarial view still satisfies partitioned
//!   security;
//! * **throughput > 0** — enforced by the caller (`experiments service`),
//!   which fails the process otherwise.

use std::net::SocketAddr;
use std::time::Instant;

use pds_adversary::check_sharded_partitioned_security;
use pds_cloud::{
    BinRoutedCloud, BinTransport, CloudServer, DbOwner, NetworkModel, ServiceConfig, ShardDaemon,
    ShardRouter, TcpCloudClient,
};
use pds_common::{Result, Value};
use pds_core::{BinningConfig, QbExecutor, QueryBinning};
use pds_obs::LatencySummary;
use pds_storage::{Partitioner, Tuple};
use pds_systems::DeterministicIndexEngine;
use pds_workload::{employee_relation, employee_sensitivity_policy};

/// One cell of the sweep: a worker-pool size under a fixed owner count.
#[derive(Debug, Clone)]
pub struct ServicePoint {
    /// Worker threads per shard daemon.
    pub workers: usize,
    /// Concurrent tenant owners in the closed loop.
    pub owners: usize,
    /// Point queries completed across all owners.
    pub ops: usize,
    /// Wall-clock seconds of the concurrent phase.
    pub wall_clock_sec: f64,
    /// Median per-query latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-query latency in milliseconds.
    pub p99_ms: f64,
    /// Whether every tenant's TCP answers equalled the threaded reference.
    pub exact: bool,
    /// Whether every tenant's composed view stayed secure afterwards.
    pub secure: bool,
}

impl ServicePoint {
    /// Queries per second across all owners.
    pub fn throughput(&self) -> f64 {
        if self.wall_clock_sec > 0.0 {
            self.ops as f64 / self.wall_clock_sec
        } else {
            0.0
        }
    }
}

/// The default worker-pool sweep.
pub fn default_workers() -> Vec<usize> {
    vec![1, 2, 4]
}

struct Tenant {
    id: u64,
    owner: DbOwner,
    router: ShardRouter,
    executor: QbExecutor<DeterministicIndexEngine>,
    workload: Vec<Value>,
    reference: Vec<Vec<Tuple>>,
}

/// Builds one tenant's deployment over the Employee workload and records
/// its in-process threaded reference answers.
fn tenant(id: u64, shards: usize, seed: u64) -> Result<Tenant> {
    let relation = employee_relation();
    let policy = employee_sensitivity_policy(&relation)?;
    let parts = Partitioner::new(policy).split(&relation)?;
    let attr = parts.sensitive.schema().attr_id("EId")?;
    let mut workload = parts.sensitive.distinct_values(attr);
    for v in parts.nonsensitive.distinct_values(attr) {
        if !workload.contains(&v) {
            workload.push(v);
        }
    }
    // Four passes over the exhaustive values: with caching off every
    // repeat pays a full round trip, giving the percentiles real samples.
    let passes = 4;
    let repeated: Vec<Value> = workload
        .iter()
        .cycle()
        .take(workload.len() * passes)
        .cloned()
        .collect();
    let workload = repeated;
    let binning = QueryBinning::build(&parts, "EId", BinningConfig::default())?;
    // Cache capacity 0: every query of the closed loop pays the full
    // owner↔daemon round trip, so latency percentiles measure the wire.
    let mut executor = QbExecutor::new(binning, DeterministicIndexEngine::new()).with_tenant(id);
    let mut owner = DbOwner::new(seed.wrapping_add(id));
    let mut router = ShardRouter::new(
        shards,
        NetworkModel::paper_wan(),
        seed.wrapping_mul(31) + id,
    )?;
    executor.outsource(&mut owner, &mut router, &parts)?;
    let reference = executor
        .run_workload_transported(&mut owner, &mut router, &workload, &BinTransport::Threaded)?
        .answers;
    Ok(Tenant {
        id,
        owner,
        router,
        executor,
        workload,
        reference,
    })
}

/// Sweeps the daemon worker-pool size with `owners` concurrent tenants
/// over `shards` loopback daemons.  The same tenant deployments are
/// reused across the sweep: each round lifts their shard servers into
/// fresh daemons and reclaims them (with everything the daemons recorded)
/// afterwards.
pub fn run(
    shards: usize,
    workers: &[usize],
    owners: usize,
    seed: u64,
) -> Result<Vec<ServicePoint>> {
    let mut tenants: Vec<Tenant> = (1..=owners as u64)
        .map(|id| tenant(id, shards, seed))
        .collect::<Result<_>>()?;

    let mut points = Vec::with_capacity(workers.len());
    for &pool in workers {
        // Lift every tenant's shard servers into one daemon per shard.
        let mut hosted: Vec<Vec<(u64, CloudServer)>> = (0..shards).map(|_| Vec::new()).collect();
        for t in tenants.iter_mut() {
            for (s, server) in t.router.shards_mut().iter_mut().enumerate() {
                hosted[s].push((t.id, std::mem::take(server)));
            }
        }
        let daemons: Vec<ShardDaemon> = hosted
            .into_iter()
            .enumerate()
            .map(|(s, servers)| {
                ShardDaemon::spawn(
                    servers,
                    ServiceConfig::with_workers(pool).with_shard(s as u64),
                )
            })
            .collect::<Result<_>>()?;
        let addrs: Vec<SocketAddr> = daemons.iter().map(ShardDaemon::addr).collect();

        // The closed loop: one thread per owner, each issuing its queries
        // one at a time and timing every round trip.
        let start = Instant::now();
        let per_owner: Vec<(Vec<f64>, bool)> = std::thread::scope(|scope| {
            let handles: Vec<_> = tenants
                .iter_mut()
                .map(|t| {
                    let addrs = addrs.clone();
                    scope.spawn(move || {
                        let transport = BinTransport::Tcp(TcpCloudClient::new(t.id, addrs));
                        let mut latencies = Vec::with_capacity(t.workload.len());
                        let mut exact = true;
                        for (value, want) in t.workload.clone().iter().zip(&t.reference) {
                            let op = Instant::now();
                            let run = t.executor.run_workload_transported(
                                &mut t.owner,
                                &mut t.router,
                                std::slice::from_ref(value),
                                &transport,
                            );
                            latencies.push(op.elapsed().as_secs_f64() * 1e3);
                            exact &= matches!(&run, Ok(r) if r.answers.len() == 1
                                && &r.answers[0] == want);
                        }
                        (latencies, exact)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("owner thread panicked"))
                .collect()
        });
        let wall_clock_sec = start.elapsed().as_secs_f64();

        // Reclaim every tenant's servers (sorted by tenant id) so the
        // composed security check sees the daemon-served episodes.
        let mut returned: Vec<Vec<(u64, CloudServer)>> =
            daemons.into_iter().map(ShardDaemon::shutdown).collect();
        let mut secure = true;
        for t in tenants.iter_mut() {
            for (s, servers) in returned.iter_mut().enumerate() {
                let pos = servers
                    .iter()
                    .position(|(id, _)| *id == t.id)
                    .expect("daemon returns every tenant's server");
                t.router.shards_mut()[s] = servers.swap_remove(pos).1;
            }
            secure &= check_sharded_partitioned_security(&t.router.adversarial_views()).is_secure();
        }

        // Latency percentiles come from the shared pds-obs log-bucketed
        // histogram (the one replacement for the old per-experiment
        // sorted-vector percentile code); the regression test in
        // `tests/latency_summary.rs` pins it to the old method within one
        // bucket width.
        let mut summary = LatencySummary::new();
        let mut exact = true;
        for (lats, ok) in per_owner {
            for ms in lats {
                summary.observe_ms(ms);
            }
            exact &= ok;
        }
        points.push(ServicePoint {
            workers: pool,
            owners,
            ops: summary.count() as usize,
            wall_clock_sec,
            p50_ms: summary.percentile_ms(50.0),
            p99_ms: summary.percentile_ms(99.0),
            exact,
            secure,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_exact_secure_and_nonzero() {
        let points = run(2, &[2], 4, 42).unwrap();
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert!(p.exact, "TCP answers must match the threaded reference");
        assert!(p.secure, "composed views must stay secure");
        assert!(p.ops > 0 && p.throughput() > 0.0);
        assert!(p.p50_ms > 0.0 && p.p99_ms >= p.p50_ms);
    }
}
