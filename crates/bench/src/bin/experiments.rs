//! The `experiments` binary: regenerates every table and figure of the
//! paper's evaluation and prints them in a form directly comparable with
//! the numbers reported in EXPERIMENTS.md.
//!
//! Usage:
//!   experiments [fig6a|fig6b|fig6c|table6|arx|headline|sharded|zipf|wire|hetero|planner|rwmix|service|pipeline|employee|all]
//!               [--scale <f64>] [--shards <n>] [--skew <f64>] [--cache <n>]
//!               [--latency <sec>] [--bandwidth <mbps>] [--workers <n>] [--owners <n>]
//!
//! `--scale` shrinks the generated datasets (default 0.01 of the paper's
//! sizes) so the full suite completes in seconds on a laptop; it must be a
//! finite value strictly greater than zero.  `--shards` sets the shard
//! count of the sharded experiments (default 8 for `sharded`, 4 for
//! `hetero`; `headline` adds a sharded retrieval section when it is
//! greater than 1; `wire` sweeps {1, N}).  `--skew` (finite, >= 0) and
//! `--cache` pin the `zipf` experiment to a single skew exponent / hot-bin
//! cache size instead of the default sweep (`--cache` also sets the
//! `rwmix` cache size).  `--latency` (seconds, finite, >= 0) and
//! `--bandwidth` (Mbps, finite, > 0) pin the `wire` experiment's simulated
//! link instead of its default latency x bandwidth sweep.  `--workers`
//! (>= 1) pins the `service` experiment's daemon worker-pool size instead
//! of its default {1, 2, 4} sweep, and `--owners` (>= 1) sets its number
//! of concurrent tenant owners (default 8; `--shards` sets its daemon
//! count, default 2).

use pds_bench::{
    attacks, fig6a, fig6b, fig6c, hetero, pipeline, planner, rwmix, service, sharded, table6, wire,
    zipf,
};

const KNOWN: [&str; 16] = [
    "all", "fig6a", "fig6b", "fig6c", "table6", "arx", "headline", "sharded", "zipf", "wire",
    "hetero", "planner", "rwmix", "service", "pipeline", "employee",
];

fn usage_exit(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: experiments [{}] [--scale <f64>] [--shards <n>] [--skew <f64>] [--cache <n>] \
         [--latency <sec>] [--bandwidth <mbps>] [--workers <n>] [--owners <n>] \
         [--trace <out.jsonl>]\n\
         \x20      experiments trace-report <trace.jsonl> [--gate-pct <f64>]\n\
         \x20      experiments obs-overhead [--budget-pct <f64>]",
        KNOWN.join("|")
    );
    std::process::exit(2);
}

/// Parses the value of a `--flag`, exiting with usage when the flag is
/// present but its value is missing or unparsable.
fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let i = args.iter().position(|a| a == flag)?;
    let Some(raw) = args.get(i + 1) else {
        usage_exit(&format!("{flag} requires a value"));
    };
    match raw.parse::<T>() {
        Ok(v) => Some(v),
        Err(_) => usage_exit(&format!("invalid {flag} value {raw:?}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The experiment name is the sole positional argument and may appear
    // before or after the flags; omitting it runs `all`.
    let mut positionals: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if arg == "--scale"
            || arg == "--shards"
            || arg == "--skew"
            || arg == "--cache"
            || arg == "--latency"
            || arg == "--bandwidth"
            || arg == "--workers"
            || arg == "--owners"
            || arg == "--trace"
            || arg == "--gate-pct"
            || arg == "--budget-pct"
        {
            i += 2; // skip the flag and its value (validated below)
            continue;
        }
        if arg.starts_with("--") {
            usage_exit(&format!("unknown flag {arg:?}"));
        }
        positionals.push(arg);
        i += 1;
    }

    // Observability subcommands take their own positionals and exit early.
    let gate_pct = parse_flag::<f64>(&args, "--gate-pct").unwrap_or(5.0);
    if !gate_pct.is_finite() || gate_pct <= 0.0 {
        usage_exit(&format!(
            "--gate-pct must be a finite value > 0, got {gate_pct}"
        ));
    }
    let budget_pct = parse_flag::<f64>(&args, "--budget-pct").unwrap_or(3.0);
    if !budget_pct.is_finite() || budget_pct <= 0.0 {
        usage_exit(&format!(
            "--budget-pct must be a finite value > 0, got {budget_pct}"
        ));
    }
    if positionals.first() == Some(&"trace-report") {
        let file = match positionals.as_slice() {
            ["trace-report", file] => *file,
            _ => usage_exit("trace-report takes exactly one trace file"),
        };
        std::process::exit(run_trace_report(file, gate_pct));
    }
    if positionals.first() == Some(&"obs-overhead") {
        if positionals.len() != 1 {
            usage_exit("obs-overhead takes no positional arguments");
        }
        std::process::exit(run_obs_overhead(budget_pct));
    }

    let which = match positionals.as_slice() {
        [] => "all",
        [one] => one,
        more => usage_exit(&format!("expected one experiment name, got {more:?}")),
    }
    .to_string();

    // Validate once at parse time; the experiments themselves no longer
    // clamp (they used to disagree: `.max(0.01)` here, `.max(0.05)` there).
    let scale = parse_flag::<f64>(&args, "--scale").unwrap_or(0.01);
    if !scale.is_finite() || scale <= 0.0 {
        usage_exit(&format!("--scale must be a finite value > 0, got {scale}"));
    }
    let shards = parse_flag::<usize>(&args, "--shards");
    if shards == Some(0) {
        usage_exit("--shards must be at least 1");
    }
    // `--skew` feeds `Zipf::new` directly, so reject what it rejects (and
    // NaN, which a bare `>= 0.0` comparison would silently wave through)
    // here at parse time, mirroring `--scale`.
    let skew = parse_flag::<f64>(&args, "--skew");
    if let Some(s) = skew {
        if !s.is_finite() || s < 0.0 {
            usage_exit(&format!("--skew must be a finite value >= 0, got {s}"));
        }
    }
    let cache = parse_flag::<usize>(&args, "--cache");
    let latency = parse_flag::<f64>(&args, "--latency");
    if let Some(l) = latency {
        if !l.is_finite() || l < 0.0 {
            usage_exit(&format!("--latency must be a finite value >= 0, got {l}"));
        }
    }
    let bandwidth = parse_flag::<f64>(&args, "--bandwidth");
    if let Some(b) = bandwidth {
        if !b.is_finite() || b <= 0.0 {
            usage_exit(&format!("--bandwidth must be a finite value > 0, got {b}"));
        }
    }
    let workers = parse_flag::<usize>(&args, "--workers");
    if workers == Some(0) {
        usage_exit("--workers must be at least 1");
    }
    let owners = parse_flag::<usize>(&args, "--owners");
    if owners == Some(0) {
        usage_exit("--owners must be at least 1");
    }

    if !KNOWN.contains(&which.as_str()) {
        usage_exit(&format!("unknown experiment {which:?}"));
    }
    // Per-experiment constraints, rejected at parse time like every other
    // flag (silently clamping an explicit request would run a different
    // configuration than the one asked for).
    if which == "hetero" && shards.is_some_and(|s| s < 2) {
        usage_exit("hetero needs --shards >= 2 (one engine per shard, at least two kinds)");
    }
    if which == "rwmix" && cache == Some(0) {
        usage_exit("rwmix needs --cache >= 1 (capacity 0 never hits, so nothing to invalidate)");
    }

    // `--trace out.jsonl`: record spans for the whole run, bracketed by one
    // root span whose duration is also measured as the wall-clock the
    // `trace-report` coverage gate compares against.
    let trace_path = parse_flag::<String>(&args, "--trace");
    if trace_path.is_some() {
        pds_obs::set_tracing(true);
        let _ = pds_obs::drain(); // fresh epoch: nothing stale in the file
    }
    let trace_start = std::time::Instant::now();
    let trace_root = pds_obs::obs_span("experiment.run");

    let run_all = which == "all";
    if run_all || which == "fig6a" {
        print_fig6a();
    }
    if run_all || which == "fig6b" {
        print_fig6b(scale);
    }
    if run_all || which == "fig6c" {
        print_fig6c(scale);
    }
    if run_all || which == "table6" {
        print_table6(scale);
    }
    if run_all || which == "arx" {
        print_arx(scale);
    }
    // Sharded runs are CI regression gates: a failure must fail the process
    // (the paper-figure sections keep printing so a partial `all` remains
    // useful for eyeballing).
    let mut sharded_ok = true;
    if run_all || which == "headline" {
        sharded_ok &= print_headline(shards.unwrap_or(1), scale);
    }
    if run_all || which == "sharded" {
        sharded_ok &= print_sharded(shards.unwrap_or(8), scale);
    }
    if run_all || which == "zipf" {
        sharded_ok &= print_zipf(scale, skew, cache);
    }
    if run_all || which == "wire" {
        sharded_ok &= print_wire(scale, shards, latency, bandwidth);
    }
    if run_all || which == "hetero" {
        sharded_ok &= print_hetero(shards.unwrap_or(4), scale);
    }
    if run_all || which == "planner" {
        sharded_ok &= print_planner(scale);
    }
    if run_all || which == "rwmix" {
        // `--cache` primarily pins zipf; an explicit `rwmix --cache 0` was
        // rejected at parse time, and `all --cache 0` falls back to the
        // rwmix default rather than failing the whole suite.
        sharded_ok &= print_rwmix(cache.filter(|&c| c > 0).unwrap_or(32));
    }
    if run_all || which == "service" {
        sharded_ok &= print_service(shards.unwrap_or(2), workers, owners.unwrap_or(8));
    }
    if run_all || which == "pipeline" {
        sharded_ok &= print_pipeline(shards.unwrap_or(2).max(2));
    }
    if run_all || which == "employee" {
        print_employee();
    }

    drop(trace_root);
    if let Some(path) = trace_path {
        pds_obs::set_tracing(false);
        let wall_ns = trace_start.elapsed().as_nanos() as f64;
        if let Err(e) = write_trace(&path, wall_ns) {
            eprintln!("failed to write trace to {path}: {e}");
            std::process::exit(1);
        }
    }

    if !sharded_ok {
        std::process::exit(1);
    }
}

/// Drains every span recorded since tracing was enabled and writes them
/// as JSON lines, closed by `wall_clock_ns` / `dropped` meta lines.
fn write_trace(path: &str, wall_ns: f64) -> std::io::Result<()> {
    use std::io::Write as _;
    let drained = pds_obs::drain();
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    for ev in &drained.events {
        writeln!(out, "{}", ev.to_json_line())?;
    }
    writeln!(
        out,
        "{}",
        pds_obs::trace::meta_line("wall_clock_ns", wall_ns)
    )?;
    writeln!(
        out,
        "{}",
        pds_obs::trace::meta_line("dropped", drained.dropped as f64)
    )?;
    out.flush()?;
    println!(
        "trace: {} spans ({} dropped) -> {path}",
        drained.events.len(),
        drained.dropped
    );
    Ok(())
}

/// `experiments trace-report <file>`: aggregate a recorded trace into
/// per-phase self-time totals and a critical path, gating main-thread
/// root-span coverage against the recorded wall-clock.
fn run_trace_report(path: &str, gate_pct: f64) -> i32 {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    let report = match pds_obs::analyze_trace(content.lines()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace-report failed: {e}");
            return 2;
        }
    };
    print!("{}", pds_obs::render_report(&report));
    if report.dropped > 0 {
        eprintln!(
            "trace-report gate FAILED: {} spans were dropped, totals are incomplete",
            report.dropped
        );
        return 1;
    }
    if report.wall_clock_ns.is_some() {
        let deviation = (report.coverage_pct - 100.0).abs();
        if deviation > gate_pct {
            eprintln!(
                "trace-report gate FAILED: main-thread root spans cover {:.2}% of \
                 wall-clock (allowed 100% +/- {gate_pct}%)",
                report.coverage_pct
            );
            return 1;
        }
        println!(
            "trace-report gate OK: {:.2}% coverage (within +/- {gate_pct}%)",
            report.coverage_pct
        );
    } else {
        println!("no wall_clock_ns meta line: coverage gate skipped");
    }
    0
}

/// `experiments obs-overhead`: gate the projected cost of *disabled*
/// tracing on the service smoke workload.
///
/// Overhead is projected, not differenced: two timed service runs differ
/// by scheduler noise far larger than a relaxed atomic load, so instead we
/// measure (a) the real per-call cost of a disabled `obs_span` and (b) the
/// number of span call sites one smoke run actually exercises (counted by
/// a traced run), and bound their product against the untraced wall-clock.
fn run_obs_overhead(budget_pct: f64) -> i32 {
    pds_obs::set_tracing(false);

    // (a) Disabled-path cost per call, amortised over enough iterations
    // that the clock reads at the ends vanish.
    let iters: u64 = 4_000_000;
    let t = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(pds_obs::obs_span("obs.overhead_probe"));
    }
    let per_call_ns = t.elapsed().as_nanos() as f64 / iters as f64;

    // (b) Untraced smoke workload wall-clock.
    let t = std::time::Instant::now();
    let baseline = service::run(2, &[2], 2, 42);
    let wall_disabled_ns = t.elapsed().as_nanos() as f64;
    if let Err(e) = baseline {
        eprintln!("obs-overhead baseline service run failed: {e}");
        return 2;
    }

    // (c) Span count of the identical workload with tracing enabled.
    let _ = pds_obs::drain();
    pds_obs::set_tracing(true);
    let traced = service::run(2, &[2], 2, 42);
    pds_obs::set_tracing(false);
    let drained = pds_obs::drain();
    if let Err(e) = traced {
        eprintln!("obs-overhead traced service run failed: {e}");
        return 2;
    }

    let spans = drained.events.len() as f64;
    let projected_pct = 100.0 * spans * per_call_ns / wall_disabled_ns.max(1.0);
    println!(
        "obs-overhead: disabled obs_span {per_call_ns:.2} ns/call, {spans} spans per \
         smoke run, untraced wall {:.1} ms",
        wall_disabled_ns / 1e6
    );
    println!(
        "obs-overhead: projected tracing-disabled overhead {projected_pct:.4}% \
         (budget {budget_pct}%)"
    );
    if projected_pct > budget_pct {
        eprintln!("obs-overhead gate FAILED: {projected_pct:.4}% > {budget_pct}%");
        return 1;
    }
    println!("obs-overhead gate OK");
    0
}

fn print_fig6a() {
    println!("== Figure 6a: analytical eta = alpha + rho(|SB|+|NSB|)/gamma (rho = 10%) ==");
    println!("{:>10} {:>10} {:>10}", "alpha", "gamma", "eta");
    for p in fig6a::paper_series() {
        println!("{:>10.2} {:>10.0} {:>10.4}", p.alpha, p.gamma, p.eta);
    }
    println!();
}

fn print_fig6b(scale: f64) {
    println!("== Figure 6b: measured eta vs alpha for three dataset sizes (scale {scale}) ==");
    println!(
        "{:>10} {:>8} {:>14} {:>14} {:>8}",
        "tuples", "alpha", "qb s/query", "full s/query", "eta"
    );
    match fig6b::paper_run(scale, 42) {
        Ok(points) => {
            for p in points {
                println!(
                    "{:>10} {:>8.2} {:>14.6} {:>14.6} {:>8.4}",
                    p.tuples, p.alpha, p.qb_sec, p.full_sec, p.eta
                );
            }
        }
        Err(e) => println!("fig6b failed: {e}"),
    }
    println!();
}

fn print_fig6c(scale: f64) {
    let tuples = ((40_000.0 * scale) as usize).max(2_000);
    println!("== Figure 6c: per-query time vs bin-size imbalance ({tuples} tuples) ==");
    println!(
        "{:>8} {:>12} {:>16} {:>16}",
        "SB bins", "||SB|-|NSB||", "sim s/query", "wall s/query"
    );
    match fig6c::paper_run(tuples, 42) {
        Ok(points) => {
            for p in points {
                println!(
                    "{:>8} {:>12} {:>16.6} {:>16.6}",
                    p.sensitive_bins, p.imbalance, p.per_query_sec, p.wall_clock_sec
                );
            }
        }
        Err(e) => println!("fig6c failed: {e}"),
    }
    println!();
}

fn print_table6(scale: f64) {
    let tuples = ((60_000.0 * scale) as usize).max(2_000);
    println!(
        "== Table VI: QB + Opaque / QB + Jana at 1-60% sensitivity ({tuples} generated tuples,"
    );
    println!("   costs scaled to the paper's 6M (Opaque) / 1M (Jana) tuple datasets) ==");
    println!(
        "{:>12} {:>8} {:>14} {:>16}",
        "backend", "alpha", "QB sec", "without QB sec"
    );
    match table6::run(tuples, &table6::paper_alphas(), 3, 42) {
        Ok(cells) => {
            for c in cells {
                println!(
                    "{:>12} {:>8.2} {:>14.1} {:>16.1}",
                    c.backend, c.alpha, c.qb_sec, c.without_qb_sec
                );
            }
        }
        Err(e) => println!("table6 failed: {e}"),
    }
    println!();
}

fn print_arx(scale: f64) {
    let tuples = ((20_000.0 * scale) as usize).max(1_500);
    println!(
        "== Section VI: Arx hardening — attacks with and without QB ({tuples} tuples, skewed) =="
    );
    println!(
        "{:>10} {:>16} {:>18} {:>14} {:>14} {:>10}",
        "mode",
        "size exact rate",
        "size disting. rate",
        "skew hit rate",
        "anonymity set",
        "secure?"
    );
    for (label, result) in [
        ("arx-alone", attacks::arx_without_qb(tuples, 150, 0.4, 42)),
        ("arx+QB", attacks::arx_with_qb(tuples, 150, 0.4, 42)),
    ] {
        match result {
            Ok(o) => println!(
                "{:>10} {:>16.3} {:>18.3} {:>14.3} {:>14.2} {:>10}",
                label,
                o.size_attack_exact_rate,
                o.size_distinguishable_rate,
                o.skew_attack_hit_rate,
                o.skew_anonymity_set,
                o.partitioned_security_holds
            ),
            Err(e) => println!("{label} failed: {e}"),
        }
    }
    println!();
}

fn print_headline(shards: usize, scale: f64) -> bool {
    println!("== Headline single-selection costs without QB (Section I / V calibration) ==");
    println!("{:>18} {:>12} {:>14}", "technique", "tuples", "seconds");
    for row in attacks::headline() {
        println!(
            "{:>18} {:>12} {:>14.4}",
            row.technique, row.tuples, row.seconds
        );
    }
    println!();
    if shards > 1 {
        // Smoke-sized sharded comparison so CI exercises the sharded path.
        let tuples = ((20_000.0 * scale) as usize).max(1_600);
        print_shard_table("Headline QB retrieval, sharded", tuples, &[1, shards], 24)
    } else {
        true
    }
}

fn print_sharded(shards: usize, scale: f64) -> bool {
    let tuples = ((40_000.0 * scale) as usize).max(2_000);
    print_shard_table(
        "Shard scaling: same workload over 1..N bin-routed shards",
        tuples,
        &sharded::shard_count_sweep(shards),
        48,
    )
}

/// Prints one shard-scaling table; returns whether the run succeeded so
/// `main` can turn a sharded failure into a nonzero exit (the CI smoke step
/// relies on that).
///
/// Two wall-clock columns are printed side by side: `parallel s` is the
/// *modelled* max-over-shards estimate from simulated per-shard costs;
/// `measured s` is the *observed* elapsed time of the same workload with
/// per-shard fetches fanned out on OS threads.  The absolute scales differ
/// (simulated seconds model a WAN and slow back-ends; measured seconds are
/// this machine's real crypto + scan work), but both must fall as shards
/// are added.
fn print_shard_table(title: &str, tuples: usize, counts: &[usize], queries: usize) -> bool {
    println!("== {title} ({tuples} tuples, {queries} queries) ==");
    println!(
        "{:>8} {:>16} {:>16} {:>18} {:>16} {:>14}",
        "shards", "aggregate s", "parallel s", "parallel s/query", "measured s", "sim net s"
    );
    let ok = match sharded::run(tuples, counts, queries, 42) {
        Ok(points) => {
            let measured_scales = points.len() < 2
                || points.last().expect("nonempty").measured_sec < points[0].measured_sec;
            for p in &points {
                println!(
                    "{:>8} {:>16.6} {:>16.6} {:>18.6} {:>16.6} {:>14.6}",
                    p.shards,
                    p.aggregate_sec,
                    p.parallel_sec,
                    p.parallel_per_query_sec(),
                    p.measured_sec,
                    p.sim_net_sec
                );
            }
            if !measured_scales {
                eprintln!(
                    "measured wall-clock did not drop from {} to {} shards",
                    points[0].shards,
                    points.last().expect("nonempty").shards
                );
            }
            measured_scales
        }
        Err(e) => {
            eprintln!("sharded run failed: {e}");
            false
        }
    };
    println!();
    ok
}

/// Prints the Zipf-skew × cache-size sweep; returns whether every cell's
/// cached answers matched the uncached baseline (a mismatch is a
/// correctness bug, so it fails the process like a sharded failure).
fn print_zipf(scale: f64, skew: Option<f64>, cache: Option<usize>) -> bool {
    let tuples = ((40_000.0 * scale) as usize).max(2_000);
    let queries = 96;
    let skews = skew.map_or_else(zipf::default_skews, |s| vec![s]);
    let capacities = cache.map_or_else(zipf::default_capacities, |c| vec![c]);
    println!(
        "== Zipf workload x owner-side hot-bin cache ({tuples} tuples, {queries} queries/cell) =="
    );
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>10} {:>12} {:>10} {:>8}",
        "skew", "cache", "hits", "misses", "hit rate", "bytes moved", "episodes", "exact?"
    );
    match zipf::run(tuples, &skews, &capacities, queries, 42) {
        Ok(points) => {
            let mut all_exact = true;
            for p in &points {
                println!(
                    "{:>8.2} {:>8} {:>8} {:>8} {:>10.3} {:>12} {:>10} {:>8}",
                    p.skew,
                    p.cache_bins,
                    p.cache_hits,
                    p.cache_misses,
                    p.hit_rate(),
                    p.total_bytes,
                    p.episodes,
                    p.matches_uncached
                );
                all_exact &= p.matches_uncached;
            }
            if !all_exact {
                eprintln!("cached answers diverged from the uncached baseline");
            }
            println!();
            all_exact
        }
        Err(e) => {
            eprintln!("zipf run failed: {e}");
            println!();
            false
        }
    }
}

/// Prints the wire-protocol sweep; returns whether every cell's answers
/// matched the in-process transport byte-for-byte, security held, and the
/// simulated clock genuinely overlapped per-shard latency (any failure is
/// a correctness bug in the wire stack, so it fails the process like a
/// sharded failure).
fn print_wire(
    scale: f64,
    shards: Option<usize>,
    latency: Option<f64>,
    bandwidth: Option<f64>,
) -> bool {
    let tuples = ((16_000.0 * scale) as usize).max(1_200);
    let latencies = latency.map_or_else(wire::default_latencies, |l| vec![l]);
    let bandwidths = bandwidth.map_or_else(wire::default_bandwidths, |b| vec![b]);
    let shard_counts = shards.map_or_else(wire::default_shards, |n| {
        if n > 1 {
            vec![1, n]
        } else {
            vec![1]
        }
    });
    println!(
        "== Wire protocol: byte-accurate traffic x event-simulated network ({tuples} tuples, \
         exhaustive workload) =="
    );
    println!(
        "{:>12} {:>10} {:>8} {:>8} {:>12} {:>8} {:>12} {:>7} {:>8}",
        "latency s",
        "Mbps",
        "shards",
        "queries",
        "wire bytes",
        "frames",
        "sim wall s",
        "exact?",
        "secure?"
    );
    let sweep_ok = match wire::run(tuples, &latencies, &bandwidths, &shard_counts, 42) {
        Ok(points) => {
            let mut all_ok = true;
            for p in &points {
                println!(
                    "{:>12.4} {:>10.0} {:>8} {:>8} {:>12} {:>8} {:>12.6} {:>7} {:>8}",
                    p.latency_sec,
                    p.bandwidth_mbps,
                    p.shards,
                    p.queries,
                    p.wire_bytes,
                    p.wire_frames,
                    p.sim_wall_sec,
                    p.exact,
                    p.secure
                );
                all_ok &= p.exact && p.secure;
            }
            if !all_ok {
                eprintln!("wire answers diverged from the in-process transport or security broke");
            }
            let overlaps = wire::overlap_holds(&points);
            if !overlaps {
                eprintln!("simulated network failed to overlap per-shard latency");
            }
            println!();
            all_ok && overlaps
        }
        Err(e) => {
            eprintln!("wire run failed: {e}");
            println!();
            false
        }
    };

    // Composed vs fine-grained: the same exhaustive workload over identical
    // deterministic-index deployments, once forced multi-round and once on
    // the live composed BinPairRequest path.
    println!(
        "== Composed BinPairRequest vs fine-grained episodes ({tuples} tuples, \
         exhaustive workload) =="
    );
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>12} {:>12} {:>10} {:>7} {:>8}",
        "shards",
        "queries",
        "rounds f",
        "rounds c",
        "bytes f",
        "bytes c",
        "BPR frames",
        "exact?",
        "secure?"
    );
    let rounds_ok = match wire::rounds_drop(tuples, &shard_counts, 42) {
        Ok(points) => {
            for p in &points {
                println!(
                    "{:>8} {:>8} {:>10} {:>10} {:>12} {:>12} {:>10} {:>7} {:>8}",
                    p.shards,
                    p.queries,
                    p.rounds_fine,
                    p.rounds_composed,
                    p.bytes_fine,
                    p.bytes_composed,
                    p.bin_pair_frames_composed,
                    p.exact,
                    p.secure
                );
            }
            let ok = wire::rounds_gate_holds(&points);
            if !ok {
                eprintln!(
                    "composed path failed its gate (needs strictly fewer rounds, <= 1.1x bytes, \
                     identical answers, BinPairRequest frames on the wire)"
                );
            }
            println!();
            ok
        }
        Err(e) => {
            eprintln!("rounds comparison failed: {e}");
            println!();
            false
        }
    };
    sweep_ok && rounds_ok
}

/// Prints the heterogeneous-shard run; returns whether the gate held
/// (exact answers, per-shard + composed security, >= 2 distinct engines,
/// composed/fine-grained paths consistent with each engine's capability).
fn print_hetero(shards: usize, scale: f64) -> bool {
    // `all --shards 1` still runs the other sharded sections at 1 shard;
    // hetero needs two engines, so the shared flag is floored here (an
    // explicit `hetero --shards 1` was already rejected at parse time).
    let shards = shards.max(2);
    let tuples = ((16_000.0 * scale) as usize).max(1_200);
    println!("== Heterogeneous shards: a different back-end per shard ({tuples} tuples) ==");
    match hetero::run(tuples, shards, 42) {
        Ok(outcome) => {
            println!(
                "{:>6} {:>14} {:>10} {:>10} {:>8} {:>12} {:>12}",
                "shard", "engine", "composed", "episodes", "rounds", "BPR frames", "bytes"
            );
            for s in &outcome.per_shard {
                println!(
                    "{:>6} {:>14} {:>10} {:>10} {:>8} {:>12} {:>12}",
                    s.shard, s.engine, s.composed, s.episodes, s.rounds, s.bin_pair_frames, s.bytes
                );
            }
            println!(
                "{} queries over {} shards, {} distinct engines; exact: {}, secure: {}, \
                 paths consistent: {}",
                outcome.queries,
                outcome.shards,
                outcome.distinct_engines,
                outcome.exact,
                outcome.secure,
                outcome.paths_consistent
            );
            if !outcome.holds() {
                eprintln!("heterogeneous deployment failed its gate");
            }
            println!();
            outcome.holds()
        }
        Err(e) => {
            eprintln!("hetero run failed: {e}");
            println!();
            false
        }
    }
}

/// Prints the cost-based planner run — the chosen per-(scenario, shard)
/// plan and the suite totals against every homogeneous deployment — and
/// returns whether the gate held (planner secure + byte-exact, and it
/// beats every homogeneous deployment offering equal attack-checked
/// security on rounds, bytes, modelled seconds and wall-clock).
fn print_planner(scale: f64) -> bool {
    let tuples = ((8_000.0 * scale) as usize).max(600);
    println!(
        "== Cost-based planner: engine per shard, pushdown, calibrated model ({tuples} tuples) =="
    );
    match planner::run(tuples, 42) {
        Ok(outcome) => {
            println!(
                "{:>14} {:>6} {:>10} {:>8} {:>16} {:>10} {:>10} {:>12}",
                "scenario",
                "shard",
                "advantage",
                "obliv?",
                "engine",
                "composed",
                "pushdown",
                "est (s)"
            );
            for p in &outcome.plans {
                println!(
                    "{:>14} {:>6} {:>10.3} {:>8} {:>16} {:>10} {:>10} {:>12.6}",
                    p.scenario,
                    p.shard,
                    p.advantage,
                    p.oblivious_required,
                    p.engine,
                    p.composed,
                    p.pushdown,
                    p.estimated_sec
                );
            }
            println!(
                "{:>16} {:>8} {:>12} {:>14} {:>12} {:>8} {:>7} {:>7}",
                "deployment",
                "rounds",
                "bytes",
                "modelled (s)",
                "wall (s)",
                "secure?",
                "exact?",
                "beaten?"
            );
            for h in std::iter::once(&outcome.planner).chain(&outcome.homogeneous) {
                println!(
                    "{:>16} {:>8} {:>12} {:>14.6} {:>12.6} {:>8} {:>7} {:>7}",
                    h.engine,
                    h.rounds,
                    h.bytes,
                    h.modelled_sec,
                    h.measured_wall_sec,
                    h.secure,
                    h.exact,
                    if std::ptr::eq(h, &outcome.planner) {
                        "-".to_string()
                    } else if !h.secure {
                        "n/a".to_string()
                    } else {
                        outcome.beats(h).to_string()
                    }
                );
            }
            println!(
                "advantage threshold {:.2}; wall-clock slack {:.1}x",
                outcome.advantage_threshold,
                planner::WALL_SLACK
            );
            if !outcome.holds() {
                eprintln!("planner failed its gate: it must beat every equally-secure homogeneous deployment");
            }
            println!();
            outcome.holds()
        }
        Err(e) => {
            eprintln!("planner run failed: {e}");
            println!();
            false
        }
    }
}

/// Prints the read/write-mix run; returns whether the gate held (exact
/// answers under invalidation, staleness observable without it, hit rate
/// drops after a write).
fn print_rwmix(cache_bins: usize) -> bool {
    println!("== Read/write mix: cache invalidation on insert (Employee workload) ==");
    match rwmix::run(cache_bins, 2, 42) {
        Ok(o) => {
            println!(
                "{:>8} {:>8} {:>16} {:>16} {:>14} {:>8} {:>18}",
                "reads",
                "writes",
                "hit rate before",
                "hit rate after",
                "hit overall",
                "exact?",
                "stale w/o inval?"
            );
            println!(
                "{:>8} {:>8} {:>16.3} {:>16.3} {:>14.3} {:>8} {:>18}",
                o.reads,
                o.writes,
                o.hit_rate_before_write,
                o.hit_rate_after_write,
                o.hit_rate_overall,
                o.answers_exact,
                o.stale_without_invalidation
            );
            if !o.holds() {
                eprintln!("read/write mix failed its gate");
            }
            println!();
            o.holds()
        }
        Err(e) => {
            eprintln!("rwmix run failed: {e}");
            println!();
            false
        }
    }
}

fn print_service(shards: usize, workers: Option<usize>, owners: usize) -> bool {
    let pools = workers.map_or_else(service::default_workers, |w| vec![w]);
    println!(
        "== TCP service: {owners} concurrent tenant owners over {shards} loopback shard \
         daemons, closed loop =="
    );
    println!(
        "{:>8} {:>8} {:>8} {:>12} {:>10} {:>10} {:>8} {:>8}",
        "workers", "owners", "ops", "ops/sec", "p50 ms", "p99 ms", "exact?", "secure?"
    );
    match service::run(shards, &pools, owners, 42) {
        Ok(points) => {
            let mut ok = true;
            for p in &points {
                println!(
                    "{:>8} {:>8} {:>8} {:>12.1} {:>10.3} {:>10.3} {:>8} {:>8}",
                    p.workers,
                    p.owners,
                    p.ops,
                    p.throughput(),
                    p.p50_ms,
                    p.p99_ms,
                    p.exact,
                    p.secure
                );
                ok &= p.exact && p.secure && p.throughput() > 0.0;
            }
            if !ok {
                eprintln!("service run failed its gate (exact answers, security, throughput)");
            }
            println!();
            ok
        }
        Err(e) => {
            eprintln!("service run failed: {e}");
            println!();
            false
        }
    }
}

/// Prints the pipelined-vs-lock-step comparison and the experiment's own
/// metrics registry (buffer-pool reuse counters); returns whether the
/// gate held (strictly faster, blocked-read self-time shrank, identical
/// answers, security intact, pool hits nonzero, v1 frames still decode).
fn print_pipeline(shards: usize) -> bool {
    println!(
        "== Pipelined wire dispatch vs lock-step over {shards} loopback shard daemons \
         (Employee workload) =="
    );
    match pipeline::run(shards, 4, pds_core::DEFAULT_PIPELINE_WINDOW, 3, 42) {
        Ok(o) => {
            println!(
                "{:>8} {:>8} {:>8} {:>14} {:>14} {:>9} {:>7} {:>8} {:>8}",
                "shards",
                "queries",
                "window",
                "lock-step s",
                "pipelined s",
                "speedup",
                "exact?",
                "secure?",
                "v1 ok?"
            );
            println!(
                "{:>8} {:>8} {:>8} {:>14.6} {:>14.6} {:>8.2}x {:>7} {:>8} {:>8}",
                o.shards,
                o.queries,
                o.window,
                o.lock_step_sec,
                o.pipelined_sec,
                o.speedup(),
                o.exact,
                o.secure,
                o.v1_compat
            );
            println!(
                "wire.call self-time (client blocked on response reads, {} reps): \
                 lock-step {:.3} ms -> pipelined {:.3} ms",
                o.reps,
                o.wire_call_lock_ns as f64 / 1e6,
                o.wire_call_pipe_ns as f64 / 1e6
            );
            let registry = pds_obs::Registry::new();
            o.flush_pool_metrics(&registry);
            print!("{}", registry.render(pds_obs::StatsScope::All));
            if !o.holds() {
                eprintln!(
                    "pipeline failed its gate (needs strictly faster wall-clock, shrinking \
                     wire.call self-time, identical answers, security, pool hits, v1 compat)"
                );
            }
            println!();
            o.holds()
        }
        Err(e) => {
            eprintln!("pipeline run failed: {e}");
            println!();
            false
        }
    }
}

fn print_employee() {
    use pds_cloud::{CloudServer, DbOwner, NetworkModel};
    use pds_core::executor::NaivePartitionedExecutor;
    use pds_core::{BinningConfig, QbExecutor, QueryBinning};
    use pds_storage::Partitioner;
    use pds_systems::NonDetScanEngine;
    use pds_workload::{employee_relation, employee_sensitivity_policy};

    println!("== Tables II & III: adversarial views for the Employee example ==");
    let rel = employee_relation();
    let policy = employee_sensitivity_policy(&rel).unwrap();
    let parts = Partitioner::new(policy).split(&rel).unwrap();

    // Table II: naive partitioned execution.
    let mut naive = NaivePartitionedExecutor::new("EId", NonDetScanEngine::new());
    let mut owner = DbOwner::new(3);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    naive.outsource(&mut owner, &mut cloud, &parts).unwrap();
    for eid in ["E259", "E101", "E199"] {
        naive.select(&mut owner, &mut cloud, &eid.into()).unwrap();
    }
    println!("-- without QB (Table II) --");
    print!("{}", cloud.adversarial_view().render_table());
    // Let the adversary observe queries for every value before judging.
    for eid in ["E101", "E152", "E159", "E254"] {
        naive.select(&mut owner, &mut cloud, &eid.into()).unwrap();
    }
    let naive_report = pds_adversary::check_partitioned_security(cloud.adversarial_view());
    println!(
        "partitioned data security holds (after exhaustive workload): {}\n",
        naive_report.is_secure()
    );

    // Table III: the same queries through QB.
    let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
    let mut qb = QbExecutor::new(binning, NonDetScanEngine::new());
    let mut owner = DbOwner::new(3);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    qb.outsource(&mut owner, &mut cloud, &parts).unwrap();
    for eid in ["E259", "E101", "E199"] {
        qb.select(&mut owner, &mut cloud, &eid.into()).unwrap();
    }
    println!("-- with QB (Table III) --");
    print!("{}", cloud.adversarial_view().render_table());
    for eid in ["E101", "E152", "E159", "E254"] {
        qb.select(&mut owner, &mut cloud, &eid.into()).unwrap();
    }
    let qb_report = pds_adversary::check_partitioned_security(cloud.adversarial_view());
    println!(
        "partitioned data security holds (after exhaustive workload): {}\n",
        qb_report.is_secure()
    );
}
