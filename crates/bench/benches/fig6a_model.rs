//! Figure 6a — benchmark of the analytical η model evaluation and the
//! underlying bin-shape computation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pds_bench::fig6a;
use pds_core::shape::{approx_square_factors, BinShape};

fn bench_fig6a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6a_model");
    group.bench_function("paper_series", |b| {
        b.iter(|| black_box(fig6a::paper_series()))
    });
    group.bench_function("approx_square_factors_1e6", |b| {
        b.iter(|| black_box(approx_square_factors(black_box(999_983))))
    });
    group.bench_function("bin_shape_for_counts_20000", |b| {
        b.iter(|| black_box(BinShape::for_counts(black_box(10_000), black_box(20_000)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig6a);
criterion_main!(benches);
