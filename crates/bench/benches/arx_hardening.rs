//! §VI — Arx with and without QB: query latency and attack evaluation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pds_bench::attacks;

fn bench_arx(c: &mut Criterion) {
    let mut group = c.benchmark_group("arx_hardening");
    group.sample_size(10);
    group.bench_function("arx_alone_workload_and_attacks", |b| {
        b.iter(|| black_box(attacks::arx_without_qb(1_200, 40, 0.4, 42).unwrap()))
    });
    group.bench_function("arx_with_qb_workload_and_attacks", |b| {
        b.iter(|| black_box(attacks::arx_with_qb(1_200, 40, 0.4, 42).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_arx);
criterion_main!(benches);
