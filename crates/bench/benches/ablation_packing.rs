//! Ablation — heavy-hitter packing strategies (Figure 5a vs 5b): how many
//! fake tuples the greedy general-case assignment needs compared with the
//! naive round-robin base case, and how long bin construction takes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pds_common::Value;
use pds_core::{BinningConfig, QueryBinning};
use pds_storage::AttributeStats;

fn heavy_hitter_inputs(n: usize) -> (Vec<Value>, Vec<Value>, AttributeStats, AttributeStats) {
    let sensitive: Vec<Value> = (0..n as i64).map(Value::Int).collect();
    let nonsensitive: Vec<Value> = (0..n as i64).map(|i| Value::Int(i + 1_000_000)).collect();
    let s_stats = AttributeStats::from_counts(
        (0..n as i64)
            .map(|i| (Value::Int(i), (i as u64 + 1) * 10))
            .collect(),
    );
    let ns_stats = AttributeStats::from_values(nonsensitive.iter());
    (sensitive, nonsensitive, s_stats, ns_stats)
}

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_packing");
    for &n in &[100usize, 1_000] {
        let (s, ns, s_stats, ns_stats) = heavy_hitter_inputs(n);
        group.bench_with_input(BenchmarkId::new("greedy_general_case", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    QueryBinning::build_from_values(
                        "K",
                        s.clone(),
                        ns.clone(),
                        s_stats.clone(),
                        ns_stats.clone(),
                        BinningConfig::default(),
                    )
                    .unwrap()
                    .total_fake_tuples(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("round_robin_base_case", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    QueryBinning::build_from_values(
                        "K",
                        s.clone(),
                        ns.clone(),
                        s_stats.clone(),
                        ns_stats.clone(),
                        BinningConfig::base_case(7),
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_packing);
criterion_main!(benches);
