//! Figure 6b — measured η vs α across dataset sizes (scaled down so the
//! bench completes quickly; the shape of the result is what matters).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pds_bench::fig6b;

fn bench_fig6b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6b_dataset_size");
    group.sample_size(10);
    for &tuples in &[1_000usize, 4_000] {
        group.bench_with_input(
            BenchmarkId::new("eta_sweep", tuples),
            &tuples,
            |b, &tuples| b.iter(|| black_box(fig6b::run(&[tuples], &[0.2, 0.6], 3, 42).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6b);
criterion_main!(benches);
