//! Shard scaling — retrieval latency of the same pseudo-TPC-H workload over
//! 1, 2, 4 and 8 bin-routed cloud shards.
//!
//! The deployment (partitioning, binning, outsourcing, plaintext
//! replication) is built once per shard count *outside* the timed closure:
//! only the workload retrieval is measured, which is the quantity expected
//! to drop as the shard count grows.
//!
//! Retrieval runs through `BinTransport::Threaded`, so what criterion times
//! here **is** the measured multi-threaded wall-clock: per-shard episode
//! streams on real OS threads, each scanning only its own shard's
//! ciphertexts.  The modelled max-over-shards estimate
//! (`ShardedCostBreakdown::parallel_sec`) rides along in the measured
//! output for eyeball comparison against the measurement.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pds_bench::deploy::{lineitem, sharded_qb_deployment};
use pds_cloud::{BinTransport, NetworkModel};
use pds_systems::NonDetScanEngine;

fn bench_sharded_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_scaling");
    group.sample_size(10);
    let relation = lineitem(2_000, 42);
    for &shards in &[1usize, 2, 4, 8] {
        let mut dep = sharded_qb_deployment(
            &relation,
            0.3,
            shards,
            NonDetScanEngine::new(),
            NetworkModel::paper_wan(),
            42,
        )
        .unwrap();
        let queries = dep.workload(43).unwrap().draw(24);
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, _| {
            b.iter(|| {
                black_box(
                    dep.run_and_cost_with(&queries, BinTransport::Threaded)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_scaling);
criterion_main!(benches);
