//! Figure 6c — per-query retrieval cost as a function of bin-size imbalance.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pds_bench::fig6c;

fn bench_fig6c(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6c_bin_size");
    group.sample_size(10);
    for &bins in &[2usize, 16, 128] {
        group.bench_with_input(
            BenchmarkId::new("sensitive_bins", bins),
            &bins,
            |b, &bins| b.iter(|| black_box(fig6c::run(2_000, 0.5, &[bins], 4, 42).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6c);
criterion_main!(benches);
