//! Owner-side hot-bin cache under a Zipf-skewed workload — retrieval time
//! of the same skewed query sequence with the cache disabled vs enabled.
//!
//! The deployment (partitioning, binning, outsourcing) is built once per
//! configuration *outside* the timed closure; only query execution is
//! measured.  Under skew `s = 1.1` the cached run answers the hot pairs at
//! the owner without touching the cloud, so its wall-clock drops below the
//! uncached baseline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pds_bench::deploy::{lineitem, qb_deployment, SEARCH_ATTR};
use pds_cloud::NetworkModel;
use pds_systems::NonDetScanEngine;
use pds_workload::QueryWorkload;

fn bench_zipf_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf_cache");
    group.sample_size(10);
    let relation = lineitem(2_000, 42);
    let attr = relation.schema().attr_id(SEARCH_ATTR).unwrap();
    let queries = QueryWorkload::zipf(&relation, attr, 1.1, 43)
        .unwrap()
        .draw(96);
    for &cache_bins in &[0usize, 4, 6] {
        let mut dep = qb_deployment(
            &relation,
            0.3,
            NonDetScanEngine::new(),
            NetworkModel::paper_wan(),
            42,
        )
        .unwrap();
        dep.executor.set_cache_capacity(cache_bins);
        group.bench_with_input(
            BenchmarkId::new("cache_bins", cache_bins),
            &cache_bins,
            |b, _| {
                b.iter(|| {
                    for q in &queries {
                        black_box(
                            dep.executor
                                .select(&mut dep.owner, &mut dep.cloud, q)
                                .unwrap(),
                        );
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_zipf_cache);
criterion_main!(benches);
