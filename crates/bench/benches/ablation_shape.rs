//! Ablation — exact factorisation vs the near-square extension (§IV-A):
//! retrieval breadth and end-to-end query cost for awkward |NS| values
//! (primes and numbers with lopsided factors).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pds_bench::fig6c;
use pds_core::shape::BinShape;

fn bench_shape(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_shape");
    // Shape computation for awkward domain sizes.
    for &ns in &[82usize, 1_999, 10_007] {
        group.bench_with_input(BenchmarkId::new("shape_for_counts", ns), &ns, |b, &ns| {
            b.iter(|| black_box(BinShape::for_counts(ns / 2, ns).unwrap()))
        });
    }
    // End-to-end cost at a near-square layout vs a deliberately lopsided one.
    group.sample_size(10);
    group.bench_function("query_cost_balanced_layout", |b| {
        b.iter(|| black_box(fig6c::run(2_000, 0.5, &[16], 4, 7).unwrap()))
    });
    group.bench_function("query_cost_lopsided_layout", |b| {
        b.iter(|| black_box(fig6c::run(2_000, 0.5, &[2], 4, 7).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_shape);
criterion_main!(benches);
