//! Pipelined wire dispatch vs lock-step, plus the pooled codec hot path.
//!
//! * **wire discipline** — the identical Employee workload through the
//!   same tenant deployment against live loopback shard daemons, once in
//!   lock-step (write one request, block for its answer) and once
//!   pipelined (a correlated in-flight window per shard, one flush,
//!   responses demuxed by correlation id);
//! * **pooled codec** — steady-state encode and framed reads, where the
//!   thread-local buffer pool serves every frame from its free list (the
//!   `pds_wire_buf_reuse_total` counters printed at the end prove it).

use std::io::Cursor;
use std::net::SocketAddr;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pds_cloud::{
    BinRoutedCloud, BinTransport, CloudServer, DbOwner, NetworkModel, ServiceConfig, ShardDaemon,
    ShardRouter, TcpCloudClient,
};
use pds_common::Value;
use pds_core::{BinningConfig, QbExecutor, QueryBinning, WireMode, DEFAULT_PIPELINE_WINDOW};
use pds_proto::{pool_stats, read_frame, Hello, ReadFrame, WireMessage};
use pds_storage::Partitioner;
use pds_systems::DeterministicIndexEngine;
use pds_workload::{employee_relation, employee_sensitivity_policy};

/// One tenant over live loopback daemons; the daemons stay up for the
/// whole benchmark (dropped with the rig at process exit).
struct Rig {
    owner: DbOwner,
    router: ShardRouter,
    executor: QbExecutor<DeterministicIndexEngine>,
    workload: Vec<Value>,
    transport: BinTransport,
    _daemons: Vec<ShardDaemon>,
}

fn rig(shards: usize, passes: usize, seed: u64) -> Rig {
    let relation = employee_relation();
    let policy = employee_sensitivity_policy(&relation).unwrap();
    let parts = Partitioner::new(policy).split(&relation).unwrap();
    let attr = parts.sensitive.schema().attr_id("EId").unwrap();
    let mut values = parts.sensitive.distinct_values(attr);
    for v in parts.nonsensitive.distinct_values(attr) {
        if !values.contains(&v) {
            values.push(v);
        }
    }
    let workload: Vec<Value> = values
        .iter()
        .cycle()
        .take(values.len() * passes)
        .cloned()
        .collect();
    let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
    let mut executor = QbExecutor::new(binning, DeterministicIndexEngine::new()).with_tenant(1);
    let mut owner = DbOwner::new(seed.wrapping_add(1));
    let mut router =
        ShardRouter::new(shards, NetworkModel::paper_wan(), seed.wrapping_mul(31)).unwrap();
    executor.outsource(&mut owner, &mut router, &parts).unwrap();

    let mut hosted: Vec<Vec<(u64, CloudServer)>> = (0..shards).map(|_| Vec::new()).collect();
    for (s, server) in router.shards_mut().iter_mut().enumerate() {
        hosted[s].push((1, std::mem::take(server)));
    }
    let daemons: Vec<ShardDaemon> = hosted
        .into_iter()
        .enumerate()
        .map(|(s, servers)| {
            ShardDaemon::spawn(servers, ServiceConfig::with_workers(2).with_shard(s as u64))
                .unwrap()
        })
        .collect();
    let addrs: Vec<SocketAddr> = daemons.iter().map(ShardDaemon::addr).collect();
    Rig {
        owner,
        router,
        executor,
        workload,
        transport: BinTransport::Tcp(TcpCloudClient::new(1, addrs)),
        _daemons: daemons,
    }
}

fn bench_wire_discipline(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_discipline");
    group.sample_size(20);
    let mut r = rig(2, 2, 42);
    for (label, mode) in [
        ("lock_step", WireMode::LockStep),
        (
            "pipelined",
            WireMode::Pipelined {
                window: DEFAULT_PIPELINE_WINDOW,
            },
        ),
    ] {
        r.executor.set_wire_mode(mode);
        let workload = r.workload.clone();
        group.bench_function(BenchmarkId::new("employee_workload", label), |b| {
            b.iter(|| {
                black_box(
                    r.executor
                        .run_workload_transported(
                            &mut r.owner,
                            &mut r.router,
                            &workload,
                            &r.transport,
                        )
                        .unwrap()
                        .answers,
                )
            })
        });
    }
    group.finish();
}

fn bench_pooled_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("pooled_codec");
    group.sample_size(20);
    let msg = WireMessage::Hello(Hello { tenant: 7 });
    group.bench_function("encode_framed", |b| {
        b.iter(|| black_box(msg.encode_framed(9).unwrap()))
    });

    // A stream of 64 frames read back through the pooled FrameReader; in
    // steady state every read reuses one pooled buffer.
    let mut stream = Vec::new();
    for corr in 1..=64u64 {
        stream.extend_from_slice(&msg.encode_framed(corr).unwrap());
    }
    group.bench_function("read_frame_stream_64", |b| {
        b.iter(|| {
            let mut cursor = Cursor::new(stream.as_slice());
            let mut frames = 0u32;
            while let ReadFrame::Frame(frame) = read_frame(&mut cursor).unwrap() {
                black_box(&frame);
                frames += 1;
            }
            assert_eq!(frames, 64);
        })
    });
    group.finish();
    let p = pool_stats();
    println!(
        "buffer pool: {} hits, {} misses, {} returns, {} reader grows",
        p.hits, p.misses, p.returns, p.reader_grows
    );
}

criterion_group!(benches, bench_wire_discipline, bench_pooled_codec);
criterion_main!(benches);
