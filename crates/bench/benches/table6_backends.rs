//! Table VI — QB composed with the Opaque and Jana cost simulators at
//! several sensitivity levels.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pds_bench::table6;

fn bench_table6(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_backends");
    group.sample_size(10);
    for alpha in [0.05, 0.4] {
        group.bench_with_input(
            BenchmarkId::new("qb_oblivious_backends", format!("alpha_{alpha}")),
            &alpha,
            |b, &alpha| b.iter(|| black_box(table6::run(1_500, &[alpha], 2, 42).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
