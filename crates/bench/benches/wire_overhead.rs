//! Wire-protocol overhead — what the byte-accurate frame layer costs.
//!
//! Three angles:
//!
//! * **codec throughput** — encode and decode of a [`BinPayload`] carrying
//!   realistic encrypted rows, at growing row counts (the response shape
//!   that dominates QB retrieval traffic);
//! * **composed vs fine-grained** — one [`BinPairRequest`] carrying a whole
//!   episode versus the multi-round [`FetchBinRequest`] messages the live
//!   §V-B back-ends send (frame-overhead amortisation);
//! * **event-loop replay** — the `NetSim` makespan computation over a
//!   synthetic multi-shard frame log (the cost added to a `Simulated`
//!   transport dispatch).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pds_common::Value;
use pds_crypto::NonDetCipher;
use pds_proto::{
    BinPairRequest, BinPayload, FetchBinRequest, LinkSpec, NetSim, RoundTrip, WireMessage, WireRow,
};

/// Realistic encrypted rows: ciphertext lengths match what `DbOwner`
/// produces for a ~5-attribute tuple.
fn rows(n: usize) -> Vec<WireRow> {
    let cipher = NonDetCipher::from_seed(7);
    let mut rng = pds_common::rng::seeded_rng(11);
    (0..n)
        .map(|i| WireRow {
            id: i as u64,
            attr_ct: cipher.encrypt(&(i as u64).to_be_bytes(), &mut rng).0,
            tuple_ct: cipher.encrypt(&[0u8; 96], &mut rng).0,
            search_tags: Vec::new(),
        })
        .collect()
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    group.sample_size(20);
    for &n in &[16usize, 128, 1024] {
        let msg = WireMessage::BinPayload(BinPayload {
            plain_tuples: Vec::new(),
            encrypted_rows: rows(n),
        });
        let frame = msg.encode().unwrap();
        group.bench_with_input(BenchmarkId::new("encode_rows", n), &msg, |b, msg| {
            b.iter(|| black_box(msg.encode().unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("decode_rows", n), &frame, |b, frame| {
            b.iter(|| black_box(WireMessage::decode(frame).unwrap()))
        });
    }
    group.finish();
}

fn bench_composed_vs_fine_grained(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_episode_encoding");
    group.sample_size(20);
    let tokens: Vec<Vec<u8>> = (0..32).map(|i| vec![i as u8; 44]).collect();
    let values: Vec<Value> = (0..32).map(Value::Int).collect();
    let composed = WireMessage::BinPairRequest(BinPairRequest {
        sensitive_bin: 3,
        nonsensitive_bin: 9,
        encrypted_values: tokens.clone(),
        nonsensitive_values: values.clone(),
        predicate: None,
    });
    let fine: Vec<WireMessage> = vec![
        WireMessage::FetchBinRequest(FetchBinRequest {
            values,
            ids: Vec::new(),
            tags: Vec::new(),
            predicate: None,
        }),
        WireMessage::FetchBinRequest(FetchBinRequest {
            values: Vec::new(),
            ids: Vec::new(),
            tags: tokens,
            predicate: None,
        }),
    ];
    let composed_len = composed.encoded_len().unwrap();
    let fine_len: usize = fine.iter().map(|m| m.encoded_len().unwrap()).sum();
    println!(
        "episode encoding: composed BinPairRequest {composed_len} B vs \
         {} fine-grained frames {fine_len} B",
        fine.len()
    );
    group.bench_function("composed_pair_request", |b| {
        b.iter(|| black_box(composed.encode().unwrap()))
    });
    group.bench_function("fine_grained_requests", |b| {
        b.iter(|| {
            for m in &fine {
                black_box(m.encode().unwrap());
            }
        })
    });
    group.finish();
}

fn bench_netsim_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_replay");
    group.sample_size(20);
    let link = LinkSpec {
        latency_sec: 0.01,
        bandwidth_bytes_per_sec: 30.0e6 / 8.0,
    };
    for &shards in &[1usize, 4, 8] {
        let sim = NetSim::uniform(shards, link).unwrap();
        let traffic: Vec<Vec<RoundTrip>> = (0..shards)
            .map(|s| {
                (0..256 / shards)
                    .map(|i| RoundTrip {
                        up_bytes: 200 + (s * i) as u64 % 64,
                        down_bytes: 4_000,
                    })
                    .collect()
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("round_trips_256_over_shards", shards),
            &traffic,
            |b, traffic| b.iter(|| black_box(sim.run(traffic).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_composed_vs_fine_grained,
    bench_netsim_replay
);
criterion_main!(benches);
