//! Regression test for the planner's cost-model calibration: on the
//! exhaustive workload, a calibrated estimate must track a freshly
//! measured run within a bounded factor, and the work profile the model
//! prices must be deterministic across identical runs.
//!
//! The bound is deliberately wide: these tests run in debug builds on
//! shared CI machines, so wall-clock noise of several× is normal, and the
//! model's scale clamp (`pds_core::planner`) caps how far one observation
//! can pull an estimate anyway.  What the factor regresses is the model
//! drifting *grossly* from reality — a seed profile or counter change that
//! leaves modelled costs orders of magnitude off measurement.

use pds_bench::deploy::{hetero_qb_deployment_over, lineitem, partition_at_alpha, SEARCH_ATTR};
use pds_bench::planner::HOMOGENEOUS;
use pds_cloud::{BinTransport, Metrics, NetworkModel};
use pds_common::Value;
use pds_core::CostModel;
use pds_storage::PartitionedRelation;
use pds_systems::{
    oblivious, ArxEngine, DeterministicIndexEngine, DpfEngine, NonDetScanEngine,
    SecretSharingEngine, SecureSelectionEngine,
};

/// Maximum allowed ratio between the calibrated estimate and a fresh
/// measurement (either direction).  See the module doc for why it is wide.
const CALIBRATION_FACTOR: f64 = 32.0;

fn engine(name: &str) -> Box<dyn SecureSelectionEngine> {
    match name {
        "det-index" => Box::new(DeterministicIndexEngine::new()),
        "nondet-scan" => Box::new(NonDetScanEngine::new()),
        "arx-index" => Box::new(ArxEngine::new()),
        "secret-sharing" => Box::new(SecretSharingEngine::new(3, 5)),
        "dpf" => Box::new(DpfEngine::new(7)),
        "opaque-sim" => Box::new(oblivious::opaque_sim()),
        other => panic!("unknown engine {other:?}"),
    }
}

/// Every distinct value of the searchable attribute on either side.
fn exhaustive_workload(parts: &PartitionedRelation) -> Vec<Value> {
    let id = parts.nonsensitive.schema().attr_id(SEARCH_ATTR).unwrap();
    let mut all = parts.nonsensitive.distinct_values(id);
    let sid = parts.sensitive.schema().attr_id(SEARCH_ATTR).unwrap();
    for v in parts.sensitive.distinct_values(sid) {
        if !all.contains(&v) {
            all.push(v);
        }
    }
    all
}

/// Runs the exhaustive workload once on a fresh single-shard deployment of
/// `name`, returning the shard's work delta and the measured wall-clock.
fn measured_run(parts: &PartitionedRelation, workload: &[Value], name: &str) -> (Metrics, f64) {
    let mut dep = hetero_qb_deployment_over(
        parts.clone(),
        SEARCH_ATTR,
        vec![engine(name)],
        NetworkModel::paper_wan(),
        7,
    )
    .unwrap();
    let before = dep.router.shard_metrics();
    let (breakdown, _) = dep
        .run_and_cost_answers(workload, BinTransport::Sequential)
        .unwrap();
    let delta = dep.router.shards()[0].metrics().delta_since(&before[0]);
    (delta, breakdown.measured_wall_sec)
}

#[test]
fn calibrated_estimates_track_measured_costs_on_the_exhaustive_workload() {
    let relation = lineitem(600, 7);
    let parts = partition_at_alpha(&relation, 0.3, 7).unwrap();
    let workload = exhaustive_workload(&parts);
    // lineitem(600) carves 75 distinct partkeys; exhaustive covers them all.
    assert!(
        workload.len() >= 75,
        "exhaustive workload unexpectedly small"
    );

    for name in HOMOGENEOUS {
        let mut model = CostModel::seeded(&[name]);
        // The wall being compared is pure compute: charge no per-round WAN
        // latency on top.
        model.set_round_trip_cost(0.0);

        let first = measured_run(&parts, &workload, name);
        let second = measured_run(&parts, &workload, name);

        // Identical deployments do identical work, so the modelled cost of
        // the two runs is identical by construction — the deterministic
        // half of calibration.
        assert_eq!(
            first.0, second.0,
            "{name}: work profile diverged between runs"
        );
        let modelled = model.modelled(name, &first.0).unwrap();
        assert!(modelled > 0.0, "{name}: modelled cost must be positive");

        // Calibrate on run one, predict run two.
        model.observe(name, 0, &first.0, first.1);
        let predicted = model.estimate(name, 0, &second.0).unwrap();
        let measured = second.1.max(f64::EPSILON);
        let ratio = predicted / measured;
        assert!(
            (1.0 / CALIBRATION_FACTOR..=CALIBRATION_FACTOR).contains(&ratio),
            "{name}: calibrated estimate {predicted:.6}s vs measured {measured:.6}s \
             ({ratio:.2}x) outside the documented {CALIBRATION_FACTOR}x band"
        );
    }
}
