//! Regression pin for the percentile dedup: the shared
//! [`pds_obs::LatencySummary`] log-bucketed histogram must agree with
//! the sorted-vector nearest-rank percentile it replaced (the old
//! per-experiment `percentile()` helpers) to within one bucket width
//! (× [`pds_obs::HISTOGRAM_GROWTH`] ≈ 1.19) in either direction.

use pds_obs::{LatencySummary, HISTOGRAM_GROWTH};

/// The exact sorted-vector estimator the experiments used before the
/// dedup, kept verbatim so the pin is against the *old* behavior, not a
/// convenient restatement of the new one.
fn old_percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Deterministic latency-shaped samples: an LCG over a few decades of
/// milliseconds, the range the service sweep actually produces.
fn samples(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
        // 0.1ms .. 1000ms, log-uniform: every histogram decade gets mass.
        out.push(0.1 * 10f64.powf(unit * 4.0));
    }
    out
}

#[test]
fn summary_percentiles_match_the_old_sorted_vector_method() {
    for seed in [7u64, 42, 1234, 99991] {
        let lat = samples(2000, seed);
        let mut summary = LatencySummary::new();
        for &ms in &lat {
            summary.observe_ms(ms);
        }
        let mut sorted = lat.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

        for p in [50.0, 90.0, 99.0, 99.9] {
            let old = old_percentile(&sorted, p / 100.0);
            let new = summary.percentile_ms(p);
            // One bucket width of slack either way: the histogram may
            // round its nearest-rank sample up to the bucket bound, and
            // the two estimators' rank conventions differ by at most one
            // adjacent order statistic.
            assert!(
                new >= old / HISTOGRAM_GROWTH && new <= old * HISTOGRAM_GROWTH,
                "p{p} drifted: old {old:.4}ms vs summary {new:.4}ms (seed {seed})"
            );
        }
        assert_eq!(summary.count(), lat.len() as u64);
    }
}

#[test]
fn summary_handles_empty_and_single_sample_edge_cases() {
    let empty = LatencySummary::new();
    assert_eq!(empty.percentile_ms(50.0), 0.0);
    assert_eq!(empty.count(), 0);

    let mut one = LatencySummary::new();
    one.observe_ms(3.5);
    let old = old_percentile(&[3.5], 0.5);
    let new = one.percentile_ms(50.0);
    assert!(new >= old / HISTOGRAM_GROWTH && new <= old * HISTOGRAM_GROWTH);
    // The clamp to the observed max keeps a single sample exact.
    assert_eq!(new, 3.5);
}
