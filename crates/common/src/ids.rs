//! Strongly-typed identifiers.
//!
//! Tuple ids in particular matter for the security analysis: the paper's
//! adversarial view (§II) is expressed in terms of *which encrypted tuples*
//! and *which clear-text tuples* the cloud returns for a query, so tuple
//! identities must be stable across the owner, the cloud and the adversary.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw index.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The raw index as `usize` (for vector indexing).
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            fn from(raw: usize) -> Self {
                Self(raw as u64)
            }
        }
    };
}

id_type!(
    /// Identifier of a tuple within a relation. The cloud reveals tuple ids
    /// of matching encrypted tuples (access pattern), which is exactly what
    /// the adversarial view records.
    TupleId,
    "t"
);

id_type!(
    /// Identifier of an attribute (column) within a schema.
    AttrId,
    "a"
);

id_type!(
    /// Identifier of a bin produced by the Query Binning algorithm.
    BinId,
    "b"
);

id_type!(
    /// Identifier of a query episode, used to correlate the owner's request
    /// with the entry it creates in the adversarial view.
    QueryId,
    "q"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(TupleId::new(4).to_string(), "t4");
        assert_eq!(BinId::new(2).to_string(), "b2");
        assert_eq!(AttrId::new(0).to_string(), "a0");
        assert_eq!(QueryId::new(9).to_string(), "q9");
    }

    #[test]
    fn conversions() {
        let t: TupleId = 7usize.into();
        assert_eq!(t.raw(), 7);
        assert_eq!(t.index(), 7);
        let t2: TupleId = 7u64.into();
        assert_eq!(t, t2);
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(TupleId::new(1) < TupleId::new(2));
    }
}
