//! # pds-common
//!
//! Shared building blocks for the *Partitioned Data Security* (ICDE 2019)
//! reproduction: attribute values, domains, error types, identifiers and
//! deterministic random-number helpers used across every other crate in the
//! workspace.
//!
//! The crate is intentionally dependency-light: everything that touches
//! relations, encryption or the cloud simulator lives in the more specific
//! crates (`pds-storage`, `pds-crypto`, `pds-cloud`, ...).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod ids;
pub mod lockcheck;
pub mod rng;
pub mod value;

pub use error::{PdsError, Result};
pub use ids::{AttrId, BinId, QueryId, TupleId};
pub use lockcheck::{OrderedGuard, OrderedMutex};
pub use value::{Domain, Value};
