//! Workspace-wide error type.

use std::fmt;

/// Convenience result alias used across all `pds-*` crates.
pub type Result<T> = std::result::Result<T, PdsError>;

/// Errors surfaced by the partitioned data security workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdsError {
    /// A schema lookup failed (unknown attribute / relation).
    Schema(String),
    /// A query referenced something that does not exist or is malformed.
    Query(String),
    /// Encryption or decryption failed (wrong key, corrupted ciphertext,
    /// MAC mismatch, ...).
    Crypto(String),
    /// Bin construction failed (e.g. more sensitive values than the binning
    /// layout can accommodate).
    Binning(String),
    /// The cloud was asked to do something inconsistent with its stored
    /// state (unknown relation, unknown tuple id, ...).
    Cloud(String),
    /// The security analysis detected an inconsistency (used by tests and
    /// the adversary crate when an internal invariant breaks).
    Security(String),
    /// Invalid configuration or parameter.
    Config(String),
    /// A wire-protocol frame or message failed to decode (truncated,
    /// corrupted, wrong version, malformed payload).
    Wire(String),
}

impl PdsError {
    /// Short machine-readable category name.
    pub fn category(&self) -> &'static str {
        match self {
            PdsError::Schema(_) => "schema",
            PdsError::Query(_) => "query",
            PdsError::Crypto(_) => "crypto",
            PdsError::Binning(_) => "binning",
            PdsError::Cloud(_) => "cloud",
            PdsError::Security(_) => "security",
            PdsError::Config(_) => "config",
            PdsError::Wire(_) => "wire",
        }
    }

    /// The human readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            PdsError::Schema(m)
            | PdsError::Query(m)
            | PdsError::Crypto(m)
            | PdsError::Binning(m)
            | PdsError::Cloud(m)
            | PdsError::Security(m)
            | PdsError::Config(m)
            | PdsError::Wire(m) => m,
        }
    }
}

impl fmt::Display for PdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.category(), self.message())
    }
}

impl std::error::Error for PdsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = PdsError::Binning("no square factors".into());
        assert_eq!(e.to_string(), "binning error: no square factors");
        assert_eq!(e.category(), "binning");
        assert_eq!(e.message(), "no square factors");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(PdsError::Cloud("x".into()), PdsError::Cloud("x".into()));
        assert_ne!(PdsError::Cloud("x".into()), PdsError::Query("x".into()));
    }

    #[test]
    fn all_categories_have_names() {
        let errs = [
            PdsError::Schema(String::new()),
            PdsError::Query(String::new()),
            PdsError::Crypto(String::new()),
            PdsError::Binning(String::new()),
            PdsError::Cloud(String::new()),
            PdsError::Security(String::new()),
            PdsError::Config(String::new()),
            PdsError::Wire(String::new()),
        ];
        let names: Vec<_> = errs.iter().map(|e| e.category()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
