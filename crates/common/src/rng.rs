//! Deterministic randomness helpers.
//!
//! Experiments must be reproducible run-to-run, so every component that needs
//! randomness (key generation, the secret permutation of sensitive values in
//! Algorithm 1, workload generators, ...) derives its random stream from an
//! explicit seed through these helpers instead of reaching for OS entropy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a seeded RNG. The same seed always produces the same stream.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a label, so independent
/// components can share one experiment-level seed without correlating their
/// streams. Uses an FNV-1a style mix which is plenty for seeding purposes.
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ parent.rotate_left(17);
    for &b in label.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= parent;
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    h
}

/// Fisher–Yates shuffle driven by an explicit RNG.
pub fn shuffle<T, R: Rng>(items: &mut [T], rng: &mut R) {
    if items.len() < 2 {
        return;
    }
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Samples a random permutation of `0..n` as a vector of indices.
pub fn random_permutation<R: Rng>(n: usize, rng: &mut R) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    shuffle(&mut perm, rng);
    perm
}

/// Fills a byte buffer with pseudo-random bytes from the given RNG.
pub fn random_bytes<R: Rng>(len: usize, rng: &mut R) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    rng.fill(buf.as_mut_slice());
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let xs: Vec<u32> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let xs: Vec<u32> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derive_seed_depends_on_label_and_parent() {
        assert_ne!(derive_seed(1, "keys"), derive_seed(1, "perm"));
        assert_ne!(derive_seed(1, "keys"), derive_seed(2, "keys"));
        assert_eq!(derive_seed(1, "keys"), derive_seed(1, "keys"));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = seeded_rng(7);
        let p = random_permutation(100, &mut rng);
        let uniq: HashSet<_> = p.iter().copied().collect();
        assert_eq!(uniq.len(), 100);
        assert_eq!(*p.iter().max().unwrap(), 99);
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = seeded_rng(9);
        let mut xs: Vec<u32> = (0..50).collect();
        shuffle(&mut xs, &mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn random_bytes_len() {
        let mut rng = seeded_rng(3);
        assert_eq!(random_bytes(33, &mut rng).len(), 33);
        assert_eq!(random_bytes(0, &mut rng).len(), 0);
    }
}
