//! Runtime lock-order witnesses: a [`Mutex`] wrapper that proves, on every
//! test run, that the process never acquires locks in two incompatible
//! orders.
//!
//! The static lock-order pass in `pds-analyze` builds the *possible*
//! nesting graph from source text; [`OrderedMutex`] is its dynamic twin.
//! Every lock belongs to a named **class** (`"service.tenant"`,
//! `"service.writer"`, ...), and with the `lockcheck` feature enabled each
//! acquisition is checked against a process-wide order graph:
//!
//! * each thread keeps the stack of classes it currently holds;
//! * acquiring class `B` while holding class `A` records the edge `A → B`;
//! * if `A` is already reachable *from* `B` in the recorded graph, some
//!   other execution ordered the same classes the opposite way — a latent
//!   deadlock — and the acquisition **panics** with both paths named;
//! * acquiring a second lock of a class the thread already holds panics
//!   too: ordering within one class cannot be established by name alone.
//!
//! With the feature disabled (the default) the wrapper is a transparent,
//! zero-bookkeeping [`Mutex`] whose `lock` recovers poison the same way
//! the shard daemon always has (`unwrap_or_else(PoisonError::into_inner)`)
//! — so production builds pay nothing and the daemon's poison-recovery
//! semantics are unchanged either way.
//!
//! The intended harness: `cargo test -p pds-core --test tcp_service
//! --features lockcheck` re-runs the hostile-client and concurrency
//! proptests with every daemon lock witnessed, turning them into a dynamic
//! race/deadlock detector on every commit.

use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, MutexGuard, PoisonError};

#[cfg(feature = "lockcheck")]
mod tracking {
    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// Directed class-order graph accumulated over the whole process.
    /// Edges are only ever added, so a reachability answer never becomes
    /// stale in the direction that matters (a missed inversion).
    #[derive(Default)]
    struct OrderGraph {
        edges: BTreeMap<&'static str, BTreeSet<&'static str>>,
    }

    impl OrderGraph {
        /// Is `to` reachable from `from` along recorded edges?  Returns the
        /// path when it is (for the panic diagnostic).
        fn path(&self, from: &'static str, to: &'static str) -> Option<Vec<&'static str>> {
            let mut stack = vec![vec![from]];
            let mut seen = BTreeSet::new();
            while let Some(path) = stack.pop() {
                let Some(&last) = path.last() else { continue };
                if last == to {
                    return Some(path);
                }
                if !seen.insert(last) {
                    continue;
                }
                if let Some(nexts) = self.edges.get(last) {
                    for &next in nexts {
                        let mut p = path.clone();
                        p.push(next);
                        stack.push(p);
                    }
                }
            }
            None
        }
    }

    fn graph() -> &'static Mutex<OrderGraph> {
        static GRAPH: OnceLock<Mutex<OrderGraph>> = OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(OrderGraph::default()))
    }

    thread_local! {
        /// Classes this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// Checks and records the acquisition of `class` *before* blocking on
    /// the underlying mutex, so an order inversion panics instead of
    /// deadlocking the test run.
    pub(super) fn acquiring(class: &'static str) {
        HELD.with(|held| {
            let held = held.borrow();
            if held.is_empty() {
                return;
            }
            // The graph mutex is a leaf: it is never held while taking a
            // user lock, so the checker cannot deadlock the checked.
            let mut graph = graph().lock().unwrap_or_else(PoisonError::into_inner);
            for &h in held.iter() {
                if h == class {
                    panic!(
                        "lockcheck: thread already holds a \"{class}\" lock while \
                         acquiring another; same-class nesting has no provable order \
                         (held stack: {held:?})"
                    );
                }
                if let Some(path) = graph.path(class, h) {
                    panic!(
                        "lockcheck: order inversion acquiring \"{class}\" while \
                         holding \"{h}\" — the opposite order {path:?} was already \
                         observed (held stack: {held:?})"
                    );
                }
                graph.edges.entry(h).or_default().insert(class);
            }
        });
        HELD.with(|held| held.borrow_mut().push(class));
    }

    /// Pops `class` from the holder's stack (last occurrence, so nested
    /// distinct classes release in any order without confusion).
    pub(super) fn released(class: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&h| h == class) {
                held.remove(pos);
            }
        });
    }

    /// Test-only view of one class's recorded successors.
    #[cfg(test)]
    pub(super) fn successors(class: &'static str) -> Vec<&'static str> {
        let graph = graph().lock().unwrap_or_else(PoisonError::into_inner);
        graph
            .edges
            .get(class)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }
}

/// A named, order-witnessed [`Mutex`].  See the module docs.
#[derive(Debug, Default)]
pub struct OrderedMutex<T> {
    class: &'static str,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wraps `value` in a mutex belonging to the named lock class.
    pub fn new(class: &'static str, value: T) -> OrderedMutex<T> {
        OrderedMutex {
            class,
            inner: Mutex::new(value),
        }
    }

    /// The lock class this mutex belongs to.
    pub fn class(&self) -> &'static str {
        self.class
    }

    /// Acquires the lock, recovering poison (a panicked holder's unwind
    /// must not cascade: the daemon already answered it with a typed error
    /// and condemned only that connection).  With the `lockcheck` feature
    /// enabled the acquisition is order-checked first and panics on an
    /// inversion — before blocking, so a latent deadlock becomes a loud
    /// test failure rather than a hung run.
    pub fn lock(&self) -> OrderedGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        tracking::acquiring(self.class);
        OrderedGuard {
            guard: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            class: self.class,
        }
    }

    /// Consumes the mutex and returns its value, recovering poison.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard of an [`OrderedMutex`]; releases the witness record on drop.
#[derive(Debug)]
pub struct OrderedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    class: &'static str,
}

impl<T> OrderedGuard<'_, T> {
    /// The lock class of the mutex this guard holds.
    pub fn class(&self) -> &'static str {
        self.class
    }
}

impl<T> Deref for OrderedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(feature = "lockcheck")]
impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        tracking::released(self.class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_lock_and_into_inner() {
        let m = OrderedMutex::new("test.passthrough", 41);
        {
            let mut g = m.lock();
            assert_eq!(m.class(), "test.passthrough");
            assert_eq!(g.class(), "test.passthrough");
            *g += 1;
        }
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn poison_is_recovered() {
        let m = std::sync::Arc::new(OrderedMutex::new("test.poison", 7));
        let m2 = std::sync::Arc::clone(&m);
        // Poison the inner mutex from a panicking thread.
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "poisoned lock still serves its value");
    }

    // The witness tests only exist when the bookkeeping is compiled in:
    // `cargo test -p pds-common --features lockcheck`.
    #[cfg(feature = "lockcheck")]
    mod witnessed {
        use super::super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        #[test]
        fn nesting_records_an_edge_and_releases_on_drop() {
            let a = OrderedMutex::new("test.edge-a", ());
            let b = OrderedMutex::new("test.edge-b", ());
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            assert!(tracking::successors("test.edge-a").contains(&"test.edge-b"));
            // Both released: taking b alone then a alone records nothing new
            // and does not trip the inversion check (no nesting).
            drop(b.lock());
            drop(a.lock());
        }

        #[test]
        fn order_inversion_panics_with_both_paths_named() {
            let a = OrderedMutex::new("test.inv-a", ());
            let b = OrderedMutex::new("test.inv-b", ());
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _gb = b.lock();
                let _ga = a.lock(); // inverts the recorded a → b order
            }))
            .expect_err("inversion must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("order inversion"), "{msg}");
            assert!(
                msg.contains("test.inv-a") && msg.contains("test.inv-b"),
                "{msg}"
            );
        }

        #[test]
        fn transitive_inversion_is_caught() {
            let a = OrderedMutex::new("test.tr-a", ());
            let b = OrderedMutex::new("test.tr-b", ());
            let c = OrderedMutex::new("test.tr-c", ());
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            {
                let _gb = b.lock();
                let _gc = c.lock();
            }
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _gc = c.lock();
                let _ga = a.lock(); // a ↝ c exists through b
            }))
            .expect_err("transitive inversion must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("order inversion"), "{msg}");
        }

        #[test]
        fn same_class_nesting_panics() {
            let a1 = OrderedMutex::new("test.same", ());
            let a2 = OrderedMutex::new("test.same", ());
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _g1 = a1.lock();
                let _g2 = a2.lock();
            }))
            .expect_err("same-class nesting must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("same-class"), "{msg}");
        }

        #[test]
        fn witness_state_survives_a_caught_panic() {
            let a = OrderedMutex::new("test.unwind-a", ());
            let b = OrderedMutex::new("test.unwind-b", ());
            let _ = catch_unwind(AssertUnwindSafe(|| {
                let _ga = a.lock();
                panic!("unwind with the lock held");
            }));
            // The guard's Drop ran during the unwind, so this thread holds
            // nothing: fresh acquisitions must not see a stale stack.
            let _ga = a.lock();
            let _gb = b.lock();
        }
    }
}
