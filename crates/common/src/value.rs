//! Attribute values and value domains.
//!
//! A [`Value`] is the unit of data stored in a relation cell and the unit of
//! search in a selection query.  The Query Binning technique of the paper
//! partitions the *values* of a searchable attribute into sensitive and
//! non-sensitive bins, so values need a total order, hashing and a stable
//! byte serialisation (the byte form is what gets encrypted by
//! `pds-crypto`).

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A single attribute value.
///
/// The variants cover what the paper's experiments need: integer keys
/// (TPC-H `L_PARTKEY`, salaries, ...), text values (employee ids such as
/// `E259`, department names) and raw bytes (ciphertexts handed back by the
/// cloud before the owner decrypts them). `Null` models the empty cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL / missing value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 text.
    Text(String),
    /// Raw bytes (used for ciphertexts and opaque payloads).
    Bytes(Vec<u8>),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// Returns `true` when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the integer payload if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the text payload if this is a [`Value::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the byte payload if this is a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Stable, self-describing byte encoding of the value.
    ///
    /// The encoding is prefix-tagged so that distinct values never encode to
    /// the same byte string; this is the plaintext handed to
    /// non-deterministic encryption and to deterministic tags/PRFs, so
    /// injectivity matters for correctness of equality search.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Value::Null => vec![0u8],
            Value::Int(v) => {
                let mut out = Vec::with_capacity(9);
                out.push(1u8);
                out.extend_from_slice(&v.to_be_bytes());
                out
            }
            Value::Text(s) => {
                let mut out = Vec::with_capacity(1 + s.len());
                out.push(2u8);
                out.extend_from_slice(s.as_bytes());
                out
            }
            Value::Bytes(b) => {
                let mut out = Vec::with_capacity(1 + b.len());
                out.push(3u8);
                out.extend_from_slice(b);
                out
            }
            Value::Bool(b) => vec![4u8, u8::from(*b)],
        }
    }

    /// Decodes a value previously produced by [`Value::encode`].
    pub fn decode(bytes: &[u8]) -> Option<Value> {
        let (&tag, rest) = bytes.split_first()?;
        match tag {
            0 => {
                if rest.is_empty() {
                    Some(Value::Null)
                } else {
                    None
                }
            }
            1 => {
                let arr: [u8; 8] = rest.try_into().ok()?;
                Some(Value::Int(i64::from_be_bytes(arr)))
            }
            2 => String::from_utf8(rest.to_vec()).ok().map(Value::Text),
            3 => Some(Value::Bytes(rest.to_vec())),
            4 => match rest {
                [0] => Some(Value::Bool(false)),
                [1] => Some(Value::Bool(true)),
                _ => None,
            },
            _ => None,
        }
    }

    /// Approximate size of the value in bytes, used by the communication
    /// cost simulator in `pds-cloud`.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Bool(_) => 1,
            Value::Text(s) => s.len(),
            Value::Bytes(b) => b.len(),
        }
    }

    /// A short human readable rendering used in adversarial-view tables.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed("null"),
            Value::Int(v) => Cow::Owned(v.to_string()),
            Value::Text(s) => Cow::Borrowed(s.as_str()),
            Value::Bool(b) => Cow::Borrowed(if *b { "true" } else { "false" }),
            Value::Bytes(b) => Cow::Owned(format!("0x{}", hex(&b[..b.len().min(8)]))),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

/// Values have a total order so that range queries and ordered indexes work.
/// Different variants order by a fixed variant rank (Null < Bool < Int <
/// Text < Bytes); values of the same variant order naturally.
impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Text(_) => 3,
                Value::Bytes(_) => 4,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Bytes(a), Value::Bytes(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

/// The domain of an attribute: the set of values the attribute may take.
///
/// The paper's security definition quantifies over `Domain(A)`; the
/// adversary's prior over associations is uniform over the domain.  For the
/// experiments we only ever need to enumerate the *active* domain (values
/// that actually occur) plus, optionally, a declared closed domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Domain {
    /// A contiguous integer domain `[lo, hi]` (inclusive).
    IntRange {
        /// Lower inclusive bound.
        lo: i64,
        /// Upper inclusive bound.
        hi: i64,
    },
    /// An explicitly enumerated domain.
    Enumerated(Vec<Value>),
    /// Unconstrained domain (the active domain stands in for it).
    Open,
}

impl Domain {
    /// Number of values in the domain, when finite.
    pub fn cardinality(&self) -> Option<u64> {
        match self {
            Domain::IntRange { lo, hi } => {
                if hi < lo {
                    Some(0)
                } else {
                    Some((hi - lo) as u64 + 1)
                }
            }
            Domain::Enumerated(vs) => Some(vs.len() as u64),
            Domain::Open => None,
        }
    }

    /// Whether a value belongs to the domain.
    pub fn contains(&self, v: &Value) -> bool {
        match self {
            Domain::IntRange { lo, hi } => match v {
                Value::Int(x) => x >= lo && x <= hi,
                _ => false,
            },
            Domain::Enumerated(vs) => vs.contains(v),
            Domain::Open => true,
        }
    }

    /// Enumerates the domain when it is finite and reasonably small.
    pub fn enumerate(&self) -> Option<Vec<Value>> {
        match self {
            Domain::IntRange { lo, hi } => {
                if hi < lo {
                    return Some(Vec::new());
                }
                let n = (*hi - *lo) as u64 + 1;
                if n > 10_000_000 {
                    return None;
                }
                Some((*lo..=*hi).map(Value::Int).collect())
            }
            Domain::Enumerated(vs) => Some(vs.clone()),
            Domain::Open => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_int() {
        let v = Value::Int(-42);
        assert_eq!(Value::decode(&v.encode()), Some(v));
    }

    #[test]
    fn encode_decode_roundtrip_text() {
        let v = Value::from("E259");
        assert_eq!(Value::decode(&v.encode()), Some(v));
    }

    #[test]
    fn encode_decode_roundtrip_bytes() {
        let v = Value::Bytes(vec![0, 1, 2, 255]);
        assert_eq!(Value::decode(&v.encode()), Some(v));
    }

    #[test]
    fn encode_decode_roundtrip_bool_and_null() {
        assert_eq!(
            Value::decode(&Value::Bool(true).encode()),
            Some(Value::Bool(true))
        );
        assert_eq!(Value::decode(&Value::Null.encode()), Some(Value::Null));
    }

    #[test]
    fn encode_is_injective_across_variants() {
        let vals = [
            Value::Null,
            Value::Int(0),
            Value::Int(1),
            Value::from(""),
            Value::from("0"),
            Value::Bytes(vec![]),
            Value::Bytes(vec![0]),
            Value::Bool(false),
            Value::Bool(true),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                if i != j {
                    assert_ne!(a.encode(), b.encode(), "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn ordering_within_variants() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::from("a") < Value::from("b"));
        assert!(Value::Null < Value::Int(i64::MIN));
    }

    #[test]
    fn int_range_domain() {
        let d = Domain::IntRange { lo: 1, hi: 10 };
        assert_eq!(d.cardinality(), Some(10));
        assert!(d.contains(&Value::Int(5)));
        assert!(!d.contains(&Value::Int(11)));
        assert_eq!(d.enumerate().unwrap().len(), 10);
    }

    #[test]
    fn enumerated_domain() {
        let d = Domain::Enumerated(vec![Value::from("a"), Value::from("b")]);
        assert_eq!(d.cardinality(), Some(2));
        assert!(d.contains(&Value::from("a")));
        assert!(!d.contains(&Value::from("c")));
    }

    #[test]
    fn empty_int_range() {
        let d = Domain::IntRange { lo: 5, hi: 1 };
        assert_eq!(d.cardinality(), Some(0));
        assert_eq!(d.enumerate().unwrap().len(), 0);
    }

    #[test]
    fn display_renders_ciphertext_prefix() {
        let v = Value::Bytes(vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(v.to_string(), "0xdeadbeef");
    }

    #[test]
    fn size_bytes_reasonable() {
        assert_eq!(Value::Int(7).size_bytes(), 8);
        assert_eq!(Value::from("abc").size_bytes(), 3);
        assert_eq!(Value::Null.size_bytes(), 1);
    }
}
