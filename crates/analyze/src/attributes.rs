//! Pass 4 — **unsafe-code attribute verification**.
//!
//! Every workspace crate (the `pds-*` crates, the root package, and the
//! vendored stand-ins) must carry `#![forbid(unsafe_code)]` on its crate
//! root.  `forbid` — unlike `deny` — cannot be overridden further down
//! the tree, so the attribute's presence is a complete proof that the
//! crate contains no `unsafe` block.  The workspace has no legitimate use
//! for `unsafe`: everything performance-sensitive is plain safe Rust, and
//! the security claims (partitioned data security, the egress lint) get
//! simpler when memory safety is unconditional.
//!
//! The member list is parsed out of the root `Cargo.toml` by hand, so a
//! newly added crate is covered the moment it joins the workspace.

use std::path::Path;

use crate::report::Finding;
use crate::source::SourceFile;

/// Pass name.
pub const PASS: &str = "unsafe-code";

/// Parses the `members = [ ... ]` array out of the root manifest's text.
pub fn workspace_members(manifest: &str) -> Vec<String> {
    let Some(at) = manifest.find("members") else {
        return Vec::new();
    };
    let rest = &manifest[at..];
    let Some(open) = rest.find('[') else {
        return Vec::new();
    };
    let Some(close) = rest.find(']') else {
        return Vec::new();
    };
    rest[open + 1..close]
        .split(',')
        .filter_map(|item| {
            let item = item.trim().trim_matches('"').trim();
            (!item.is_empty() && !item.starts_with('#')).then(|| item.to_string())
        })
        .collect()
}

/// Whether the token stream opens with (or anywhere contains, since inner
/// attributes must precede items anyway) `# ! [ forbid ( unsafe_code ) ]`.
fn has_forbid_unsafe(file: &SourceFile) -> bool {
    let toks = &file.toks;
    toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

/// Runs the pass.  Checks the crate root (`src/lib.rs`, or `src/main.rs`
/// for binary-only crates) of every workspace member plus the root
/// package.  Returns `(findings, summary)`.
pub fn check(root: &Path, manifest: &str) -> (Vec<Finding>, String) {
    let mut findings = Vec::new();
    let mut roots: Vec<String> = vec!["src/lib.rs".to_string()];
    for member in workspace_members(manifest) {
        let lib = format!("{member}/src/lib.rs");
        let main = format!("{member}/src/main.rs");
        if root.join(&lib).is_file() {
            roots.push(lib);
        } else if root.join(&main).is_file() {
            roots.push(main);
        } else {
            findings.push(Finding {
                pass: PASS,
                file: format!("{member}/Cargo.toml"),
                line: 1,
                message: format!(
                    "workspace member `{member}` has neither src/lib.rs nor \
                     src/main.rs; cannot verify #![forbid(unsafe_code)]"
                ),
            });
        }
    }
    let checked = roots.len();
    for rel in roots {
        match SourceFile::load(root, &rel) {
            Ok(file) => {
                if !has_forbid_unsafe(&file) {
                    findings.push(Finding {
                        pass: PASS,
                        file: rel,
                        line: 1,
                        message: "crate root is missing #![forbid(unsafe_code)]; every \
                                  workspace crate forbids unsafe unconditionally"
                            .to_string(),
                    });
                }
            }
            Err(e) => findings.push(Finding {
                pass: PASS,
                file: rel,
                line: 1,
                message: e,
            }),
        }
    }
    let summary = format!(
        "unsafe-code: {checked} crate root(s) checked, {} missing the forbid",
        findings.len()
    );
    (findings, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_parse_from_manifest_text() {
        let m = "[workspace]\nmembers = [\n  \"crates/a\",\n  \"vendor/b\",\n]\n";
        assert_eq!(workspace_members(m), ["crates/a", "vendor/b"]);
    }

    #[test]
    fn forbid_attr_is_recognized_exactly() {
        let yes = SourceFile::from_source("a.rs", "//! docs\n#![forbid(unsafe_code)]\nfn f() {}");
        let no = SourceFile::from_source("b.rs", "#![deny(unsafe_code)]\nfn f() {}");
        assert!(has_forbid_unsafe(&yes));
        assert!(!has_forbid_unsafe(&no));
    }
}
