//! Findings and report formatting shared by all passes.

use std::fmt;

/// One analyzer finding: a pass, a location, and a human-actionable
/// message.  Findings are the unit of failure — `check` exits nonzero iff
/// any pass produced at least one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which pass produced this (`plaintext-egress`, `lock-order`,
    /// `panic-path`, `unsafe-code`, `annotations`).
    pub pass: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.pass, self.file, self.line, self.message
        )
    }
}

/// The aggregate result of a full `check` run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings across passes, in pass order then file order.
    pub findings: Vec<Finding>,
    /// Per-pass summary lines printed even on success, so CI logs show
    /// what was actually checked (files scanned, sites counted, ...).
    pub summary: Vec<String>,
}

impl Report {
    /// Whether the run passed.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report for terminal/CI output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.summary {
            out.push_str(line);
            out.push('\n');
        }
        if self.findings.is_empty() {
            out.push_str("pds-analyze: all passes clean\n");
        } else {
            out.push('\n');
            for f in &self.findings {
                out.push_str(&f.to_string());
                out.push('\n');
            }
            out.push_str(&format!(
                "\npds-analyze: {} finding(s) across {} pass(es)\n",
                self.findings.len(),
                {
                    let mut passes: Vec<_> = self.findings.iter().map(|f| f.pass).collect();
                    passes.sort_unstable();
                    passes.dedup();
                    passes.len()
                }
            ));
        }
        out
    }
}
