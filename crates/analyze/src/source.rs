//! Source-file model: lexed workspace files with test code stripped and
//! functions extracted.
//!
//! All passes operate on **non-test** code: files under `tests/`,
//! `benches/`, `examples/` or `fixtures/` directories are skipped
//! entirely, and `#[cfg(test)]` items (typically `mod tests { ... }`) are
//! stripped from the token stream of the files that remain.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Allow, Tok, TokKind};

/// One analyzed file: lexed, test-stripped, annotation-harvested.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// Token stream with `#[cfg(test)]` items removed.
    pub toks: Vec<Tok>,
    /// Allow annotations (harvested before stripping, so an annotation
    /// inside test code is simply never matched by a finding).
    pub allows: Vec<Allow>,
}

/// One extracted `fn` item: name plus token ranges into the file's stream.
#[derive(Debug, Clone)]
pub struct Function {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Last line of the body (or of the signature for bodyless decls).
    pub end_line: u32,
    /// Token index range of the whole item (from `fn` through `}` / `;`),
    /// signature included.
    pub span: std::ops::Range<usize>,
    /// Token index range of just the body (empty for bodyless decls).
    pub body: std::ops::Range<usize>,
}

impl SourceFile {
    /// Loads and lexes one file.  I/O errors surface as `Err(message)` so
    /// the binary can report them without panicking.
    pub fn load(root: &Path, rel: &str) -> Result<SourceFile, String> {
        let path = root.join(rel);
        let src = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Ok(SourceFile::from_source(rel, &src))
    }

    /// Builds a source file from in-memory text (used by fixture tests).
    pub fn from_source(rel: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        SourceFile {
            rel: rel.to_string(),
            toks: strip_cfg_test(lexed.toks),
            allows: lexed.allows,
        }
    }

    /// Every `fn` item in the stripped stream, nested ones included.
    pub fn functions(&self) -> Vec<Function> {
        extract_functions(&self.toks)
    }

    /// Whether an allow annotation for `pass` covers `line` (the
    /// annotation must sit on the same line or the line directly above —
    /// adjacency keeps suppressions reviewable next to what they excuse).
    pub fn allow_at(&self, pass: &str, line: u32) -> Option<&Allow> {
        self.allows
            .iter()
            .find(|a| a.pass == pass && (a.line == line || a.line + 1 == line))
    }
}

/// Removes every item annotated `#[cfg(test)]` from the token stream.
///
/// Recognizes the exact token shape `# [ cfg ( test ) ]`, then drops it,
/// any further attributes, and the item that follows (through its matching
/// close brace, or through `;` for bodyless items).
pub fn strip_cfg_test(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if is_cfg_test_attr(&toks, i) {
            // Skip this attribute...
            i = skip_attr(&toks, i);
            // ...any stacked attributes on the same item...
            while i < toks.len() && toks[i].is_punct('#') {
                i = skip_attr(&toks, i);
            }
            // ...and the item itself.
            i = skip_item(&toks, i);
        } else {
            out.push(toks[i].clone());
            i += 1;
        }
    }
    out
}

/// Does `# [ cfg ( test ) ]` (or `#[cfg(all(test, ...))]` etc. — any
/// attribute whose argument list contains the bare ident `test`) start at
/// token `i`?
fn is_cfg_test_attr(toks: &[Tok], i: usize) -> bool {
    if !(toks.get(i).is_some_and(|t| t.is_punct('#'))
        && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
        && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg")))
    {
        return false;
    }
    let end = match_delim(toks, i + 1, '[', ']');
    let args = &toks[i + 2..end];
    // `#[cfg(not(test))]` is *production* code; only strip when `test`
    // appears un-negated (good enough for this workspace's attribute
    // vocabulary — no pass needs full cfg-expression evaluation).
    args.iter().any(|t| t.is_ident("test")) && !args.iter().any(|t| t.is_ident("not"))
}

/// Index just past the attribute starting at `#` token `i`.
fn skip_attr(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if toks.get(j).is_some_and(|t| t.is_punct('[')) {
        match_delim(toks, j, '[', ']')
    } else {
        j
    }
}

/// Index just past the item starting at token `i`: consumes through the
/// first top-level `;`, or through the matching `}` of the first `{`.
fn skip_item(toks: &[Tok], i: usize) -> usize {
    let mut j = i;
    let mut depth = 0usize;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    j
}

/// Index just past the `close` matching the `open` at token `i`.
fn match_delim(toks: &[Tok], i: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_punct(open) {
            depth += 1;
        } else if toks[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Extracts every `fn` item (free, impl, trait, nested).
fn extract_functions(toks: &[Tok]) -> Vec<Function> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue; // `fn(` type position, not an item
        }
        // Find the body `{` or a trait-decl `;`, skipping the signature
        // (whose generics/where clauses may nest `<>`/`()` arbitrarily,
        // but never braces).
        let mut j = i + 2;
        let mut body = 0..0;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                let end = match_delim(toks, j, '{', '}');
                body = j + 1..end.saturating_sub(1);
                j = end;
                break;
            }
            if toks[j].is_punct(';') {
                j += 1;
                break;
            }
            j += 1;
        }
        let end_line = toks
            .get(j.saturating_sub(1))
            .map(|t| t.line)
            .unwrap_or(t.line);
        out.push(Function {
            name: name_tok.text.clone(),
            line: t.line,
            end_line,
            span: i..j,
            body,
        });
    }
    out
}

/// Recursively collects `.rs` files under `dir` (relative results), in
/// sorted order for deterministic reports.  Directories named `tests`,
/// `benches`, `examples`, `fixtures` or `target` are pruned: every pass
/// analyzes production code only.
pub fn rust_files_under(root: &Path, rel_dir: &str) -> Result<Vec<String>, String> {
    let mut found: Vec<PathBuf> = Vec::new();
    let dir = root.join(rel_dir);
    if dir.is_dir() {
        walk(&dir, &mut found)?;
    }
    let prefix = root.to_path_buf();
    let mut rels: Vec<String> = found
        .iter()
        .filter_map(|p| {
            p.strip_prefix(&prefix)
                .ok()
                .map(|r| r.to_string_lossy().replace('\\', "/"))
        })
        .collect();
    rels.sort();
    Ok(rels)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    const PRUNE: &[&str] = &["tests", "benches", "examples", "fixtures", "target"];
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read entry in {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if !PRUNE.contains(&name.as_str()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_modules_are_stripped() {
        let f = SourceFile::from_source(
            "x.rs",
            "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { b.unwrap(); } }\nfn after() {}",
        );
        let names: Vec<_> = f.functions().iter().map(|f| f.name.clone()).collect();
        assert_eq!(names, ["live", "after"]);
        assert!(!f.toks.iter().any(|t| t.is_ident("tests")));
    }

    #[test]
    fn cfg_all_test_is_stripped_too() {
        let f = SourceFile::from_source(
            "x.rs",
            "#[cfg(all(test, feature = \"x\"))]\nmod gated { fn t() {} }\nfn live() {}",
        );
        let names: Vec<_> = f.functions().iter().map(|f| f.name.clone()).collect();
        assert_eq!(names, ["live"]);
    }

    #[test]
    fn functions_capture_spans_and_nesting() {
        let f = SourceFile::from_source(
            "x.rs",
            "impl S {\n  fn outer(&self) -> u32 {\n    fn inner() {}\n    1\n  }\n}",
        );
        let fns = f.functions();
        let names: Vec<_> = fns.iter().map(|f| f.name.clone()).collect();
        assert_eq!(names, ["outer", "inner"]);
        assert_eq!(fns[0].line, 2);
        assert!(fns[0].end_line >= 5);
    }

    #[test]
    fn allow_matches_same_or_previous_line() {
        let f = SourceFile::from_source(
            "x.rs",
            "// pds-allow: panic-path(reason one)\nlet a = 1; // pds-allow: lock-order(reason two)\n",
        );
        assert!(f.allow_at("panic-path", 2).is_some());
        assert!(f.allow_at("lock-order", 2).is_some());
        assert!(f.allow_at("panic-path", 3).is_none());
        assert!(f.allow_at("plaintext-egress", 2).is_none());
    }
}
