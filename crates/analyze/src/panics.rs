//! Pass 3 — the **panic-path audit**.
//!
//! A panic in the daemon hot path either kills a worker thread or, at
//! best, burns a connection and poisons locks; in the wire path it turns
//! attacker-controlled bytes into a crash.  Two-tier policy:
//!
//! * **Hot paths** (the daemon's accept/serve/write path and the wire
//!   codec) forbid panic sites outright.  Every `.unwrap()`, `.expect()`,
//!   `panic!`, `unreachable!`, `todo!` or `unimplemented!` in those files
//!   is a finding unless annotated
//!   `// pds-allow: panic-path(<reason>)` on or directly above the line.
//! * **Everywhere else** a committed ratchet holds the line: the
//!   workspace-wide count of unsuppressed panic sites may only go down.
//!   The baseline lives in `crates/analyze/ratchet.toml`; after a
//!   burndown, `pds-analyze ratchet` records the new (lower) number.
//!
//! Matching is exact-token (`unwrap` preceded by `.` and followed by `(`),
//! so `unwrap_or_else`, `unwrap_or_default` and friends — the *fixes* for
//! panic sites — never count against the budget.

use std::collections::BTreeSet;

use crate::report::Finding;
use crate::source::SourceFile;

/// Pass name, as used in findings and `pds-allow` annotations.
pub const PASS: &str = "panic-path";

/// Macro names that are panic sites when invoked (`name!`).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// One detected panic site.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// File the site is in.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What matched (`unwrap`, `expect`, `panic!`, ...).
    pub what: String,
}

/// Scans one file for unsuppressed panic sites.  Suppressed sites push
/// their annotation onto `used` instead of being returned.
pub fn sites_in(file: &SourceFile, used: &mut Vec<(String, u32)>) -> Vec<PanicSite> {
    let mut out = Vec::new();
    let toks = &file.toks;
    for (i, t) in toks.iter().enumerate() {
        let what = if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            t.text.clone()
        } else if PANIC_MACROS.iter().any(|m| t.is_ident(m))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            format!("{}!", t.text)
        } else {
            continue;
        };
        if let Some(allow) = file.allow_at(PASS, t.line) {
            used.push((file.rel.clone(), allow.line));
            continue;
        }
        out.push(PanicSite {
            file: file.rel.clone(),
            line: t.line,
            what,
        });
    }
    out
}

/// Runs the audit.  `hot` names the workspace-relative files where panic
/// sites are forbidden outright; `baseline` is the committed ratchet value
/// (None when the ratchet file is missing, itself a finding).
///
/// Returns `(findings, used_allows, summary, workspace_count)`.
pub fn check(
    files: &[&SourceFile],
    hot: &BTreeSet<&str>,
    baseline: Option<u64>,
    ratchet_rel: &str,
) -> (Vec<Finding>, Vec<(String, u32)>, String, u64) {
    let mut findings = Vec::new();
    let mut used = Vec::new();
    let mut count = 0u64;
    let mut hot_hits = 0usize;

    for &file in files {
        let is_hot = hot.contains(file.rel.as_str());
        for site in sites_in(file, &mut used) {
            count += 1;
            if is_hot {
                hot_hits += 1;
                findings.push(Finding {
                    pass: PASS,
                    file: site.file.clone(),
                    line: site.line,
                    message: format!(
                        "`{}` in a daemon/wire hot path; return a typed PdsError \
                         instead, or annotate with \
                         `// pds-allow: panic-path(<reason>)` if provably \
                         unreachable",
                        site.what
                    ),
                });
            }
        }
    }

    match baseline {
        None => findings.push(Finding {
            pass: PASS,
            file: ratchet_rel.to_string(),
            line: 1,
            message: format!(
                "ratchet file is missing; run `pds-analyze ratchet` to record \
                 the current workspace panic-site count ({count}) as the baseline"
            ),
        }),
        Some(base) if count > base => findings.push(Finding {
            pass: PASS,
            file: ratchet_rel.to_string(),
            line: 1,
            message: format!(
                "workspace panic-site count rose to {count} (ratchet baseline \
                 is {base}); the count may only decrease — convert the new \
                 sites to typed PdsErrors"
            ),
        }),
        Some(_) => {}
    }

    let summary = format!(
        "panic-path: {count} workspace site(s) (ratchet baseline {}), \
         {hot_hits} in hot paths",
        baseline.map_or_else(|| "missing".to_string(), |b| b.to_string()),
    );
    (findings, used, summary, count)
}

/// Parses `panic_sites = N` out of the ratchet file's text.
pub fn parse_ratchet(text: &str) -> Option<u64> {
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("panic_sites") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                return value.trim().parse().ok();
            }
        }
    }
    None
}

/// Renders a fresh ratchet file for `pds-analyze ratchet`.
pub fn render_ratchet(count: u64) -> String {
    format!(
        "# pds-analyze panic-path ratchet.\n\
         #\n\
         # The workspace-wide count of unsuppressed panic sites\n\
         # (`.unwrap()`, `.expect()`, `panic!`, `unreachable!`, `todo!`,\n\
         # `unimplemented!`) in non-test code.  `pds-analyze check` fails if\n\
         # the live count exceeds this number: the only way is down.  After\n\
         # a burndown, refresh with `cargo run -p pds-analyze -- ratchet`.\n\
         panic_sites = {count}\n"
    )
}
