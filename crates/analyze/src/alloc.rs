//! Pass 5 — the **hot-path allocation lint**.
//!
//! The wire codec runs once per frame on every daemon connection; a fresh
//! heap allocation there (a `Vec::new()` that grows per frame, a
//! `.to_vec()` copy of a payload slice) is exactly the cost the
//! thread-local buffer pool (`pds_proto::pool`) exists to kill, and a
//! regression is invisible to the type checker: the code still works, it
//! just silently re-allocates per frame and the
//! `pds_wire_buf_reuse_total` hit counters flatline.
//!
//! Policy: in the per-frame codec files (the frame codec and the pool
//! itself), non-test code must not call `Vec::new(..)`,
//! `Vec::with_capacity(..)`, `vec![..]` or `.to_vec()`.  Buffers come
//! from the pool's free list.  The audited escape hatch is
//! `// pds-allow: hot-alloc(<reason>)` on or directly above the line —
//! the pool's own cold path (first frame on a thread, empty free list)
//! carries one, and that should stay the only warm-blooded allocation in
//! the loop.
//!
//! Matching is exact-token, per the workspace lexer: `Vec :: new (` /
//! `Vec :: with_capacity (`, the `vec !` macro, and `to_vec` preceded by
//! `.` and followed by `(`.  Type positions (`Vec<Vec<u8>>`) never match
//! — no call parenthesis — and `#[cfg(test)]` items are stripped before
//! the scan, so test fixtures allocate freely.

use crate::report::Finding;
use crate::source::SourceFile;

/// Pass name, as used in findings and `pds-allow` annotations.
pub const PASS: &str = "hot-alloc";

/// One detected allocation site.
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// File the site is in.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What matched (`Vec::new`, `vec!`, `.to_vec()`, ...).
    pub what: String,
}

/// Scans one file for unsuppressed per-frame allocation sites.
/// Suppressed sites push their annotation onto `used` instead of being
/// returned.
pub fn sites_in(file: &SourceFile, used: &mut Vec<(String, u32)>) -> Vec<AllocSite> {
    let mut out = Vec::new();
    let toks = &file.toks;
    for (i, t) in toks.iter().enumerate() {
        let what = if t.is_ident("Vec")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks
                .get(i + 3)
                .is_some_and(|n| n.is_ident("new") || n.is_ident("with_capacity"))
            && toks.get(i + 4).is_some_and(|n| n.is_punct('('))
        {
            format!("Vec::{}", toks[i + 3].text)
        } else if t.is_ident("vec") && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            "vec!".to_string()
        } else if t.is_ident("to_vec")
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            ".to_vec()".to_string()
        } else {
            continue;
        };
        if let Some(allow) = file.allow_at(PASS, t.line) {
            used.push((file.rel.clone(), allow.line));
            continue;
        }
        out.push(AllocSite {
            file: file.rel.clone(),
            line: t.line,
            what,
        });
    }
    out
}

/// Runs the lint over the per-frame codec files.
///
/// Returns `(findings, used_allows)`.
pub fn check(files: &[&SourceFile]) -> (Vec<Finding>, Vec<(String, u32)>) {
    let mut findings = Vec::new();
    let mut used = Vec::new();
    for &file in files {
        for site in sites_in(file, &mut used) {
            findings.push(Finding {
                pass: PASS,
                file: site.file.clone(),
                line: site.line,
                message: format!(
                    "`{}` allocates in the per-frame codec loop; take a pooled \
                     buffer (`pds_proto::pool`) so steady-state frames reuse \
                     the free list, or annotate with \
                     `// pds-allow: hot-alloc(<reason>)` if this provably runs \
                     off the per-frame path",
                    site.what
                ),
            });
        }
    }
    (findings, used)
}
