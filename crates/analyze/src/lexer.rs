//! A lightweight hand-rolled Rust lexer — just enough structure for the
//! project-specific passes, with no external parser dependencies
//! (consistent with the workspace's vendored-offline policy).
//!
//! The lexer produces a flat token stream (identifiers, literals,
//! punctuation) with line numbers, skipping comments and whitespace but
//! *harvesting* [`Allow`] annotations out of the comments it skips:
//!
//! ```text
//! // pds-allow: panic-path(fault injection for the unwind test)
//! ```
//!
//! Totality matters more than fidelity here: unterminated strings or
//! comments lex to the end of input instead of erroring, so a half-edited
//! file still produces a useful (if partial) analysis instead of a crash.

/// Kinds of token the passes distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `let`, `unwrap`, ...).
    Ident,
    /// A numeric literal (loosely lexed; suffixes included).
    Number,
    /// A string, raw-string, byte-string or char literal (text dropped —
    /// no pass may match inside literals).
    Literal,
    /// A lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// A single punctuation character (`{`, `.`, `;`, `!`, ...).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token's text (empty for [`TokKind::Literal`]).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.starts_with(c)
    }
}

/// One `// pds-allow: <pass>(<reason>)` annotation harvested from a
/// comment.  The reason is mandatory: an unexplained suppression is not an
/// audit trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the annotation comment sits on.
    pub line: u32,
    /// The pass being suppressed (`plaintext-egress`, `lock-order`,
    /// `panic-path`).
    pub pass: String,
    /// The free-text justification inside the parentheses.
    pub reason: String,
}

/// The output of lexing one file: tokens plus harvested annotations.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// The token stream (comments and whitespace removed).
    pub toks: Vec<Tok>,
    /// Every `pds-allow` annotation found in comments, in source order.
    pub allows: Vec<Allow>,
}

/// Marker that introduces an allow annotation inside a comment.
pub const ALLOW_MARKER: &str = "pds-allow:";

/// Parses the body of a comment for a `pds-allow: pass(reason)` form.
fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let at = comment.find(ALLOW_MARKER)?;
    let rest = comment[at + ALLOW_MARKER.len()..].trim_start();
    let open = rest.find('(')?;
    let pass = rest[..open].trim().to_string();
    let close = rest.rfind(')')?;
    if close <= open {
        return None;
    }
    let reason = rest[open + 1..close].trim().to_string();
    if pass.is_empty() || reason.is_empty() {
        return None;
    }
    Some(Allow { line, pass, reason })
}

/// Lexes `src` into tokens and annotations.  Total: never fails.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut out = Lexed::default();

    // Consumes a quoted body starting *after* the opening quote; returns
    // the index after the closing quote, counting newlines into `line`.
    fn skip_quoted(b: &[char], mut i: usize, line: &mut u32, quote: char) -> usize {
        while i < b.len() {
            match b[i] {
                '\\' => i += 2,
                '\n' => {
                    *line += 1;
                    i += 1;
                }
                c if c == quote => return i + 1,
                _ => i += 1,
            }
        }
        i
    }

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                let comment: String = b[start..i].iter().collect();
                // Doc comments (`///`, `//!`) are documentation, not
                // suppressions — the allow grammar may be *described* there
                // without being enacted.
                if !comment.starts_with("///") && !comment.starts_with("//!") {
                    if let Some(allow) = parse_allow(&comment, line) {
                        out.allows.push(allow);
                    }
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                // Nested block comments, annotations harvested line-accurately.
                let mut depth = 1usize;
                let comment_line = line;
                let start = i;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let comment: String = b[start..i.min(b.len())].iter().collect();
                if !comment.starts_with("/**") && !comment.starts_with("/*!") {
                    if let Some(allow) = parse_allow(&comment, comment_line) {
                        out.allows.push(allow);
                    }
                }
            }
            '"' => {
                let l = line;
                i = skip_quoted(&b, i + 1, &mut line, '"');
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: l,
                });
            }
            'r' | 'b' if starts_raw_or_byte_string(&b, i) => {
                let l = line;
                i = skip_string_prefix(&b, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: l,
                });
            }
            '\'' => {
                // Disambiguate char literal from lifetime/label.
                let l = line;
                if i + 1 < b.len() && b[i + 1] == '\\' {
                    i = skip_quoted(&b, i + 1, &mut line, '\'');
                    out.toks.push(Tok {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line: l,
                    });
                } else if i + 2 < b.len() && b[i + 2] == '\'' {
                    i += 3;
                    out.toks.push(Tok {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line: l,
                    });
                } else {
                    // Lifetime or loop label: 'ident
                    let start = i + 1;
                    i += 1;
                    while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[start..i].iter().collect(),
                        line: l,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Number,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Does position `i` (at `r` or `b`) start a raw/byte string literal
/// rather than an identifier?
fn starts_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let mut j = i;
    // Accept the prefixes r", r#", b", br", rb is not legal but harmless.
    while j < b.len() && (b[j] == 'r' || b[j] == 'b') && j - i < 2 {
        j += 1;
    }
    let mut k = j;
    while k < b.len() && b[k] == '#' {
        k += 1;
    }
    k < b.len() && b[k] == '"' && (k > j || j > i)
    // either hashes present (raw) or a quote right after the prefix
}

/// Skips a raw/byte string starting at its `r`/`b` prefix; returns the
/// index just past the closing delimiter.
fn skip_string_prefix(b: &[char], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() && (b[i] == 'r' || b[i] == 'b') {
        i += 1;
    }
    let mut hashes = 0usize;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == '"' {
        i += 1;
        if hashes == 0 {
            // Plain (byte) string: escapes apply.
            while i < b.len() {
                match b[i] {
                    '\\' => i += 2,
                    '\n' => {
                        *line += 1;
                        i += 1;
                    }
                    '"' => return i + 1,
                    _ => i += 1,
                }
            }
        } else {
            // Raw string: ends at `"` followed by the same number of `#`.
            while i < b.len() {
                if b[i] == '\n' {
                    *line += 1;
                    i += 1;
                } else if b[i] == '"'
                    && b[i + 1..].iter().take_while(|&&c| c == '#').count() >= hashes
                {
                    return i + 1 + hashes;
                } else {
                    i += 1;
                }
            }
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn identifiers_are_exact_tokens_not_substrings() {
        let ids = idents("let nonsensitive_values = sensitive_values;");
        assert_eq!(ids, ["let", "nonsensitive_values", "sensitive_values"]);
    }

    #[test]
    fn literals_and_comments_hide_their_contents() {
        let src = r##"
            // unwrap in a comment
            /* panic! in /* a nested */ block */
            let s = "unwrap() inside a string";
            let r = r#"expect("raw")"#;
            let c = '\'';
            let b = b"panic!";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { loop { break 'a; } }");
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
    }

    #[test]
    fn allow_annotations_are_harvested_with_lines() {
        let src = "\n// pds-allow: panic-path(fault injection for a test)\npanic!();\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        let a = &lexed.allows[0];
        assert_eq!(a.line, 2);
        assert_eq!(a.pass, "panic-path");
        assert_eq!(a.reason, "fault injection for a test");
    }

    #[test]
    fn doc_comments_do_not_enact_allows() {
        let src = "/// like `// pds-allow: panic-path(reason)` on the line\n\
                   //! e.g. pds-allow: lock-order(reason)\n\
                   /** pds-allow: plaintext-egress(reason) */\n\
                   // pds-allow: panic-path(a real suppression)\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].line, 4);
    }

    #[test]
    fn malformed_allow_annotations_are_ignored() {
        assert!(lex("// pds-allow: panic-path").allows.is_empty());
        assert!(lex("// pds-allow: panic-path()").allows.is_empty());
        assert!(lex("// pds-allow: (reason)").allows.is_empty());
    }

    #[test]
    fn line_numbers_track_through_multiline_constructs() {
        let src = "let a = \"one\ntwo\";\nlet b = 1;";
        let lexed = lex(src);
        let b_tok = lexed.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 3);
    }
}
