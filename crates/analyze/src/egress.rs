//! Pass 1 — the **plaintext-egress lint**.
//!
//! The paper's security argument rests on one invariant the compiler
//! cannot see: sensitive plaintext (bin values, decrypted tuples) must
//! never reach a wire-encode or socket-write site except through
//! `pds-crypto`.  The partitioned-security checks only catch violations a
//! test happens to exercise; this pass checks the *source text* of every
//! non-test function in the wire-adjacent crates (`cloud`, `proto`,
//! `core`) on every commit.
//!
//! The check is a taint triple over a function's identifier set:
//!
//! * a **source** identifier marks sensitive plaintext in scope
//!   (`sensitive_values`, `decrypt_tuple`, ...);
//! * a **sink** identifier marks wire egress (`write_all`, `encode`,
//!   wire-message constructors, `TcpStream`, ...);
//! * a **boundary** identifier marks the `pds-crypto` seam
//!   (`encrypt`, `Ciphertext`, search `tags`/`tokens`, ...).
//!
//! A function mentioning a source *and* a sink but *no* boundary is
//! exactly the shape of a leak: sensitive data and an egress point in one
//! scope with no evidence of encryption between them.  Identifier-set
//! granularity is deliberately coarse — it cannot prove data flow, but it
//! also cannot be silently defeated by intermediate bindings, and on this
//! codebase it produces zero false positives: the non-sensitive side
//! travels in clear by design under *different* identifiers
//! (`nonsensitive_values`, `plain_tuples`), which exact-token matching
//! keeps distinct.
//!
//! False positives are suppressed with an audited annotation on (or
//! immediately above) the `fn` line:
//!
//! ```text
//! // pds-allow: plaintext-egress(<why this is not a leak>)
//! ```

use crate::report::Finding;
use crate::source::SourceFile;

/// Pass name, as used in findings and `pds-allow` annotations.
pub const PASS: &str = "plaintext-egress";

/// Identifiers that mark sensitive plaintext in scope.
///
/// `sensitive_attr` / `sensitive_predicate` cover the residual-pushdown
/// invariant: a predicate over the sensitive (or searchable) attribute
/// must never be framed for cloud-side evaluation — the planner evaluates
/// those owner-side only, so any function holding one next to a pushdown
/// sink is a leak shape.
pub const SOURCES: &[&str] = &[
    "sensitive_values",
    "sensitive_tuples",
    "decrypted",
    "decrypted_tuples",
    "decrypt_tuple",
    "decrypt_value",
    "sensitive_attr",
    "sensitive_predicate",
];

/// Identifiers that mark a wire-egress point.  The last three are the
/// residual-pushdown path: the predicate encoder, the cloud's filtered
/// select entry point, and the planner accessor that releases a residual
/// onto the wire.
pub const SINKS: &[&str] = &[
    "write_all",
    "encode",
    "encode_frame",
    "to_wire",
    "TcpStream",
    "WireMessage",
    "BinPairRequest",
    "FetchBinRequest",
    "InsertRequest",
    "BinPayload",
    "write_predicate",
    "plain_select_filtered",
    "wire_residual",
];

/// Identifiers that mark the `pds-crypto` seam between the two.
pub const BOUNDARY: &[&str] = &[
    "pds_crypto",
    "encrypt",
    "encrypt_tuple",
    "cipher",
    "Ciphertext",
    "tags",
    "tokens",
    "search_tags",
    "encrypted_values",
    "encrypted_rows",
];

/// Runs the lint over the given files.  Returns `(findings, used_allows)`
/// where `used_allows` are `(rel, line)` pairs of annotations that
/// suppressed a real match (the driver fails on stale annotations).
pub fn check(files: &[&SourceFile]) -> (Vec<Finding>, Vec<(String, u32)>) {
    let mut findings = Vec::new();
    let mut used = Vec::new();
    for &file in files {
        for func in file.functions() {
            let span = &file.toks[func.span.clone()];
            let has = |set: &[&str]| {
                span.iter()
                    .find(|t| set.iter().any(|s| t.is_ident(s)))
                    .map(|t| t.text.clone())
            };
            let Some(source) = has(SOURCES) else { continue };
            let Some(sink) = has(SINKS) else { continue };
            if has(BOUNDARY).is_some() {
                continue;
            }
            // Suppression: annotation on the fn line, just above it, or
            // anywhere inside the function (next to the flagged site).
            if let Some(allow) = file
                .allows
                .iter()
                .find(|a| a.pass == PASS && a.line + 1 >= func.line && a.line <= func.end_line)
            {
                used.push((file.rel.clone(), allow.line));
                continue;
            }
            findings.push(Finding {
                pass: PASS,
                file: file.rel.clone(),
                line: func.line,
                message: format!(
                    "fn `{}` mentions sensitive plaintext (`{source}`) and a wire \
                     egress site (`{sink}`) with no pds-crypto boundary in scope; \
                     route the data through pds_crypto or annotate the fn with \
                     `// pds-allow: plaintext-egress(<reason>)`",
                    func.name
                ),
            });
        }
    }
    (findings, used)
}
