//! Pass 2 — the **lock-order pass**.
//!
//! The daemon path (`service.rs`, `tcp.rs`, `cache.rs`) holds multiple
//! `OrderedMutex` classes: per-tenant server state, the shared job queue,
//! per-connection writers, connection registries, shard connection pools.
//! A deadlock needs two threads taking two of those in opposite orders —
//! and nothing in the type system prevents a refactor from introducing
//! exactly that.  This pass extracts every static acquisition site,
//! builds the nesting graph (which lock classes are acquired while which
//! others are held, including through calls), and fails on any cycle.
//!
//! It is the static half of a two-sided witness: the runtime half is
//! `pds_common::lockcheck::OrderedMutex`, which panics on the first
//! *observed* inversion under the `lockcheck` feature.  The static pass
//! catches orders no test happens to interleave; the runtime witness
//! catches acquisitions this pass's heuristics cannot see (trait objects,
//! closures stored in fields).  Their class vocabularies line up:
//! statically a class is `<file-stem>.<receiver-ident>` (e.g.
//! `service.writer`), matching the explicit class strings passed to
//! `OrderedMutex::new`.
//!
//! Heuristics, stated precisely:
//!
//! * An acquisition site is the token shape `recv . lock ( )`; its class
//!   is the receiver identifier.
//! * A **let-bound** guard (`let g = x.lock();`) is held until its
//!   enclosing block closes; a **temporary** (`x.lock().push(v)`) is held
//!   until the end of its statement.
//! * A free-function call made while holding locks contributes edges to
//!   every class the callee (resolved by simple name within the analyzed
//!   file set) can transitively acquire.  Method and `::`-path calls are
//!   not resolved — simple names would conflate unrelated receivers —
//!   which is one of the blind spots the runtime witness covers.
//!
//! Suppression: `// pds-allow: lock-order(<reason>)` on or directly above
//! an acquisition line removes that *site* from the graph.

use std::collections::{BTreeMap, BTreeSet};

use crate::report::Finding;
use crate::source::{Function, SourceFile};

/// Pass name, as used in findings and `pds-allow` annotations.
pub const PASS: &str = "lock-order";

/// One static acquisition site.
#[derive(Debug, Clone)]
pub struct Site {
    /// Lock class (`<file-stem>.<receiver>`).
    pub class: String,
    /// File the acquisition is in.
    pub file: String,
    /// 1-based line of the `.lock()` call.
    pub line: u32,
}

/// A directed nesting edge: `to` is acquired while `from` is held.
#[derive(Debug, Clone)]
pub struct Edge {
    /// The lock class already held.
    pub from: String,
    /// The lock class being acquired under it.
    pub to: String,
    /// Where the inner acquisition (or the call leading to it) happens.
    pub site: Site,
}

/// Per-function facts extracted in one pass over its body.
#[derive(Debug, Default)]
struct FnFacts {
    /// Classes acquired directly anywhere in the body.
    acquires: BTreeSet<String>,
    /// Direct nesting edges observed inside the body.
    edges: Vec<Edge>,
    /// Every callee name invoked in the body (for transitive acquires).
    calls: BTreeSet<String>,
    /// Calls made while holding locks: (held classes, callee, site).
    calls_under_lock: Vec<(Vec<String>, String, Site)>,
}

#[derive(Debug, Clone)]
struct Held {
    class: String,
    /// Brace depth at acquisition (relative to the body).
    depth: usize,
    let_bound: bool,
}

/// Runs the pass.  Returns `(findings, used_allows, summary)`.
pub fn check(files: &[&SourceFile]) -> (Vec<Finding>, Vec<(String, u32)>, String) {
    let mut used = Vec::new();
    let mut facts: BTreeMap<String, FnFacts> = BTreeMap::new();
    let mut site_count = 0usize;
    let mut classes: BTreeSet<String> = BTreeSet::new();

    for &file in files {
        let stem = file_stem(&file.rel);
        for func in file.functions() {
            let f = scan_function(file, &stem, &func, &mut used);
            site_count += f.acquires.len();
            classes.extend(f.acquires.iter().cloned());
            // Same-name functions across files merge conservatively: the
            // union over-approximates, which can only add edges, never
            // hide one.
            let entry = facts.entry(func.name.clone()).or_default();
            entry.acquires.extend(f.acquires);
            entry.edges.extend(f.edges);
            entry.calls.extend(f.calls);
            entry.calls_under_lock.extend(f.calls_under_lock);
        }
    }

    // Fixpoint: what can each function transitively acquire?
    let mut trans: BTreeMap<String, BTreeSet<String>> = facts
        .iter()
        .map(|(name, f)| (name.clone(), f.acquires.clone()))
        .collect();
    loop {
        let mut changed = false;
        for (name, f) in &facts {
            let mut add = BTreeSet::new();
            for callee in &f.calls {
                if let Some(set) = trans.get(callee) {
                    add.extend(set.iter().cloned());
                }
            }
            if let Some(mine) = trans.get_mut(name) {
                for class in add {
                    changed |= mine.insert(class);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Assemble the full edge set: direct edges plus call-mediated ones.
    let mut edges: Vec<Edge> = Vec::new();
    for f in facts.values() {
        edges.extend(f.edges.iter().cloned());
        for (held, callee, site) in &f.calls_under_lock {
            if let Some(reach) = trans.get(callee) {
                for from in held {
                    for to in reach {
                        edges.push(Edge {
                            from: from.clone(),
                            to: to.clone(),
                            site: site.clone(),
                        });
                    }
                }
            }
        }
    }

    // Graph + cycle detection.
    let mut graph: BTreeMap<&str, BTreeMap<&str, &Site>> = BTreeMap::new();
    for e in &edges {
        graph
            .entry(e.from.as_str())
            .or_default()
            .entry(e.to.as_str())
            .or_insert(&e.site);
    }

    let mut findings = Vec::new();
    if let Some(cycle) = find_cycle(&graph) {
        let order: Vec<&str> = cycle.clone();
        let mut hops = Vec::new();
        for w in order.windows(2) {
            let site = graph[w[0]][w[1]];
            hops.push(format!(
                "`{}` then `{}` at {}:{}",
                w[0], w[1], site.file, site.line
            ));
        }
        let site = graph[order[0]][order[1]];
        findings.push(Finding {
            pass: PASS,
            file: site.file.clone(),
            line: site.line,
            message: format!(
                "lock classes form an acquisition cycle ({}); {} — two threads \
                 running these paths concurrently can deadlock; acquire the \
                 classes in one global order",
                order.join(" -> "),
                hops.join("; ")
            ),
        });
    }

    let edge_count: usize = graph.values().map(BTreeMap::len).sum();
    let summary = format!(
        "lock-order: {site_count} acquisition site(s), {} class(es), \
         {edge_count} nesting edge(s), {}",
        classes.len(),
        if findings.is_empty() {
            "acyclic"
        } else {
            "CYCLIC"
        }
    );
    (findings, used, summary)
}

/// `crates/cloud/src/service.rs` -> `service`.
fn file_stem(rel: &str) -> String {
    rel.rsplit('/')
        .next()
        .unwrap_or(rel)
        .trim_end_matches(".rs")
        .to_string()
}

/// One linear walk over a function body, tracking held locks by depth.
fn scan_function(
    file: &SourceFile,
    stem: &str,
    func: &Function,
    used: &mut Vec<(String, u32)>,
) -> FnFacts {
    let toks = &file.toks[func.body.clone()];
    let mut facts = FnFacts::default();
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    // Token index where the current statement began (for let-detection).
    let mut stmt_start = 0usize;

    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            stmt_start = i + 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            held.retain(|h| h.depth <= depth);
            stmt_start = i + 1;
        } else if t.is_punct(';') {
            held.retain(|h| h.let_bound || h.depth != depth);
            stmt_start = i + 1;
        } else if t.is_ident("lock")
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == crate::lexer::TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
        {
            let class = format!("{stem}.{}", toks[i - 2].text);
            if let Some(allow) = file.allow_at(PASS, t.line) {
                used.push((file.rel.clone(), allow.line));
                i += 3;
                continue;
            }
            let site = Site {
                class: class.clone(),
                file: file.rel.clone(),
                line: t.line,
            };
            for h in &held {
                facts.edges.push(Edge {
                    from: h.class.clone(),
                    to: class.clone(),
                    site: site.clone(),
                });
            }
            facts.acquires.insert(class.clone());
            let let_bound = toks[stmt_start..i].iter().any(|t| t.is_ident("let"));
            held.push(Held {
                class,
                depth,
                let_bound,
            });
            i += 3;
            continue;
        } else if t.kind == crate::lexer::TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !t.is_ident("lock")
            && !(i >= 1 && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':')))
        {
            // A *free-function* call: resolvable by simple name within the
            // analyzed files.  Method and path calls (`conn.shutdown(..)`,
            // `Type::new(..)`) are excluded — simple-name resolution would
            // conflate unrelated receivers (e.g. `TcpStream::shutdown` with
            // `ShardDaemon::shutdown`); dynamic dispatch the static pass
            // cannot see is what the runtime lockcheck witness is for.
            // Skip keywords that syntactically precede parens without
            // being calls.
            const NOT_CALLS: &[&str] = &["if", "while", "for", "match", "return", "fn"];
            if !NOT_CALLS.contains(&t.text.as_str()) {
                facts.calls.insert(t.text.clone());
                if !held.is_empty() {
                    facts.calls_under_lock.push((
                        held.iter().map(|h| h.class.clone()).collect(),
                        t.text.clone(),
                        Site {
                            class: String::new(),
                            file: file.rel.clone(),
                            line: t.line,
                        },
                    ));
                }
            }
        }
        i += 1;
    }
    facts
}

/// Finds one cycle in the class graph, returned as a closed path
/// (`[a, b, a]`), or `None` if the graph is acyclic.
fn find_cycle<'g>(graph: &BTreeMap<&'g str, BTreeMap<&'g str, &Site>>) -> Option<Vec<&'g str>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Visiting,
        Done,
    }
    let mut marks: BTreeMap<&str, Mark> = BTreeMap::new();
    let mut stack: Vec<&str> = Vec::new();

    fn dfs<'g>(
        node: &'g str,
        graph: &BTreeMap<&'g str, BTreeMap<&'g str, &Site>>,
        marks: &mut BTreeMap<&'g str, Mark>,
        stack: &mut Vec<&'g str>,
    ) -> Option<Vec<&'g str>> {
        marks.insert(node, Mark::Visiting);
        stack.push(node);
        if let Some(nexts) = graph.get(node) {
            for &next in nexts.keys() {
                match marks.get(next) {
                    Some(Mark::Visiting) => {
                        let start = stack.iter().position(|&n| n == next).unwrap_or(0);
                        let mut cycle: Vec<&str> = stack[start..].to_vec();
                        cycle.push(next);
                        return Some(cycle);
                    }
                    Some(Mark::Done) => {}
                    None => {
                        if let Some(c) = dfs(next, graph, marks, stack) {
                            return Some(c);
                        }
                    }
                }
            }
        }
        stack.pop();
        marks.insert(node, Mark::Done);
        None
    }

    for &node in graph.keys() {
        if marks.contains_key(node) {
            continue;
        }
        if let Some(c) = dfs(node, graph, &mut marks, &mut stack) {
            return Some(c);
        }
    }
    None
}
