//! Command-line entry point for the workspace analyzer.
//!
//! ```text
//! cargo run -p pds-analyze -- check              # run every pass; exit 1 on findings
//! cargo run -p pds-analyze -- ratchet            # record the current panic count
//! cargo run -p pds-analyze -- check --root PATH  # analyze another checkout
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

/// `--root` override or the workspace containing this crate (two levels up
/// from `crates/analyze`), so `cargo run -p pds-analyze` works from any
/// working directory.
fn resolve_root(args: &[String]) -> Result<PathBuf, String> {
    if let Some(i) = args.iter().position(|a| a == "--root") {
        return args
            .get(i + 1)
            .map(PathBuf::from)
            .ok_or_else(|| "--root requires a path argument".to_string());
    }
    Ok(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

fn usage() -> String {
    "usage: pds-analyze <check|ratchet> [--root PATH]\n\
     \n\
     check    run all passes (plaintext-egress, lock-order, panic-path,\n\
     \t  unsafe-code, annotations); exit 1 if any finding\n\
     ratchet  count workspace panic sites and rewrite crates/analyze/ratchet.toml"
        .to_string()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let root = match resolve_root(&args) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("pds-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    match cmd.as_str() {
        "check" => match pds_analyze::run_check(&root) {
            Ok(report) => {
                print!("{}", report.render());
                if report.is_clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("pds-analyze: {e}");
                ExitCode::from(2)
            }
        },
        "ratchet" => match pds_analyze::current_panic_count(&root) {
            Ok(count) => {
                let path = root.join(pds_analyze::RATCHET_FILE);
                let old = std::fs::read_to_string(&path)
                    .ok()
                    .and_then(|t| pds_analyze::panics::parse_ratchet(&t));
                match std::fs::write(&path, pds_analyze::panics::render_ratchet(count)) {
                    Ok(()) => {
                        match old {
                            Some(old) if count > old => println!(
                                "ratchet RAISED {old} -> {count}: this will be visible \
                                 in review; prefer converting the new sites to typed errors"
                            ),
                            Some(old) => println!("ratchet {old} -> {count}"),
                            None => println!("ratchet initialized at {count}"),
                        }
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("pds-analyze: cannot write {}: {e}", path.display());
                        ExitCode::from(2)
                    }
                }
            }
            Err(e) => {
                eprintln!("pds-analyze: {e}");
                ExitCode::from(2)
            }
        },
        other => {
            eprintln!("pds-analyze: unknown command `{other}`\n{}", usage());
            ExitCode::from(2)
        }
    }
}
