//! Pass 6 — the **telemetry-redaction lint**.
//!
//! Observability must never become an exfiltration channel: a span name,
//! metric label, or histogram sample that carries sensitive plaintext
//! would hand the adversary exactly what the partitioned store withholds.
//! This pass re-uses the plaintext-egress source vocabulary
//! ([`crate::egress::SOURCES`]) but swaps the sink set for the `pds-obs`
//! emission API: no **trace or metric emission call** may mention a
//! sensitive-plaintext identifier *inside its argument list*.
//!
//! The granularity is deliberately finer than the egress lint's
//! whole-function triple.  Instrumented functions legitimately mention
//! sensitive identifiers — `fine_grained_bin_episode` opens a span *and*
//! reads `request.sensitive_values` two lines later, and that is the
//! whole point of instrumenting it.  What must never happen is the
//! sensitive identifier appearing **between the emission call's
//! parentheses**, where it would flow into a span name, label value, or
//! recorded sample.  So the pass finds each sink identifier followed by
//! `(`, walks to the matching close paren, and flags any source
//! identifier inside that argument span.
//!
//! False positives are suppressed with the usual audited annotation on
//! (or immediately above) the `fn` line or next to the flagged call:
//!
//! ```text
//! // pds-allow: telemetry-redaction(<why this emission is clean>)
//! ```

use crate::egress::SOURCES;
use crate::report::Finding;
use crate::source::SourceFile;

/// Pass name, as used in findings and `pds-allow` annotations.
pub const PASS: &str = "telemetry-redaction";

/// The `pds-obs` emission surface: every function through which a string
/// or sample leaves instrumented code and enters the trace ring or the
/// metrics registry.  Anything sensitive between one of these calls'
/// parentheses ends up in a JSONL trace artifact or a Prometheus
/// snapshot a tenant can request over the wire.
pub const SINKS: &[&str] = &[
    "obs_span",
    "record_manual",
    "counter_add",
    "counter_set",
    "gauge_set",
    "hist_observe",
    "observe_ms",
    "meta_line",
];

/// Runs the lint over the given files.  Returns `(findings, used_allows)`
/// with the same shape as [`crate::egress::check`] so the driver's
/// stale-annotation accounting covers this pass too.
pub fn check(files: &[&SourceFile]) -> (Vec<Finding>, Vec<(String, u32)>) {
    let mut findings = Vec::new();
    let mut used = Vec::new();
    for &file in files {
        for func in file.functions() {
            let span = &file.toks[func.span.clone()];
            for (sink, source, line) in leaky_emissions(span) {
                // Suppression: annotation on/above the fn line or
                // anywhere inside the function (next to the call).
                if let Some(allow) = file
                    .allows
                    .iter()
                    .find(|a| a.pass == PASS && a.line + 1 >= func.line && a.line <= func.end_line)
                {
                    used.push((file.rel.clone(), allow.line));
                    continue;
                }
                findings.push(Finding {
                    pass: PASS,
                    file: file.rel.clone(),
                    line,
                    message: format!(
                        "fn `{}` passes sensitive plaintext (`{source}`) into the \
                         telemetry emission `{sink}(..)`; redact the value before \
                         it reaches pds-obs or annotate with \
                         `// pds-allow: telemetry-redaction(<reason>)`",
                        func.name
                    ),
                });
            }
        }
    }
    (findings, used)
}

/// Scans one function's token span for emission calls whose argument list
/// contains a sensitive-source identifier.  Returns `(sink, source,
/// line)` triples — one per offending source occurrence.
fn leaky_emissions(span: &[crate::lexer::Tok]) -> Vec<(String, String, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < span.len() {
        let t = &span[i];
        let is_sink = SINKS.iter().any(|s| t.is_ident(s));
        if !is_sink || !span.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            i += 1;
            continue;
        }
        // Walk the argument list to its matching close paren.  The lexer
        // is total, so an unbalanced span just runs to the end of the
        // function — degrading to coarser granularity, never crashing.
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < span.len() {
            if span[j].is_punct('(') {
                depth += 1;
            } else if span[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if let Some(src) = SOURCES.iter().find(|s| span[j].is_ident(s)) {
                out.push((t.text.clone(), (*src).to_string(), span[j].line));
            }
            j += 1;
        }
        i = j.max(i + 1);
    }
    out
}
