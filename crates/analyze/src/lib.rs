//! # pds-analyze — workspace-wide static analysis for the QB daemon.
//!
//! Project-specific invariants the compiler cannot check, run as a CI
//! gate (`cargo run -p pds-analyze -- check`):
//!
//! 1. **[`egress`]** — the plaintext-egress lint.  Sensitive plaintext
//!    must not reach wire-encode/socket-write sites in `cloud`/`proto`/
//!    `core` without a `pds-crypto` boundary in scope.
//! 2. **[`lockorder`]** — the lock-order pass.  `OrderedMutex` classes in
//!    the daemon path must nest acyclically; the runtime half of this
//!    witness is `pds_common::lockcheck` under the `lockcheck` feature.
//! 3. **[`panics`]** — the panic-path audit.  Hot-path files forbid panic
//!    sites outright; everywhere else a committed ratchet
//!    (`crates/analyze/ratchet.toml`) only ever goes down.
//! 4. **[`attributes`]** — every workspace crate root carries
//!    `#![forbid(unsafe_code)]`.
//! 5. **[`redaction`]** — the telemetry-redaction lint.  No `pds-obs`
//!    trace/metric emission call may take sensitive-plaintext
//!    identifiers in its argument list, anywhere in the workspace.
//! 6. **[`alloc`]** — the hot-path allocation lint.  The per-frame wire
//!    codec must not allocate fresh buffers (`Vec::new`, `vec!`,
//!    `.to_vec()`) outside the buffer pool's audited cold path; frames
//!    reuse the thread-local free list.
//!
//! Suppressions use one audited grammar, checked for staleness: a
//! `// pds-allow: <pass>(<reason>)` comment on (or directly above) the
//! offending line, where `<pass>` is one of `plaintext-egress`,
//! `lock-order`, `panic-path`, `hot-alloc` and `<reason>` is mandatory
//! free text.  An
//! annotation that no longer suppresses anything, or that names an
//! unknown pass, is itself a finding — the suppression inventory cannot
//! rot.
//!
//! Everything is built on a hand-rolled lexer ([`lexer`]) — no external
//! parser crates, consistent with the workspace's vendored-offline
//! policy, and total so half-edited files degrade instead of crashing
//! the gate.

#![forbid(unsafe_code)]

pub mod alloc;
pub mod attributes;
pub mod egress;
pub mod lexer;
pub mod lockorder;
pub mod panics;
pub mod redaction;
pub mod report;
pub mod source;

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use report::{Finding, Report};
use source::SourceFile;

/// Pass names a `pds-allow` annotation may legitimately target.
pub const KNOWN_PASSES: &[&str] = &[
    alloc::PASS,
    egress::PASS,
    lockorder::PASS,
    panics::PASS,
    redaction::PASS,
];

/// Directories whose non-test functions get the plaintext-egress lint:
/// the wire-adjacent crates.
pub const EGRESS_DIRS: &[&str] = &["crates/cloud/src", "crates/proto/src", "crates/core/src"];

/// Files whose lock acquisitions feed the lock-order nesting graph: the
/// daemon's concurrent path.
pub const LOCK_FILES: &[&str] = &[
    "crates/cloud/src/service.rs",
    "crates/cloud/src/tcp.rs",
    "crates/cloud/src/cache.rs",
];

/// Files where panic sites are forbidden outright: the daemon
/// accept/serve/write path and the wire codec, where a panic either
/// kills a worker or turns attacker bytes into a crash.
pub const HOT_FILES: &[&str] = &[
    "crates/cloud/src/service.rs",
    "crates/cloud/src/tcp.rs",
    "crates/cloud/src/session.rs",
    "crates/proto/src/frame.rs",
    "crates/proto/src/messages.rs",
];

/// Files forming the per-frame wire codec loop, where fresh heap
/// allocations defeat the buffer pool: the frame codec and the pool
/// itself (whose single cold-path allocation carries an audited allow).
pub const HOT_ALLOC_FILES: &[&str] = &["crates/proto/src/frame.rs", "crates/proto/src/pool.rs"];

/// Workspace-relative path of the committed panic-site ratchet.
pub const RATCHET_FILE: &str = "crates/analyze/ratchet.toml";

/// Loads every analyzable production `.rs` file in the workspace
/// (everything under `crates/` and the root `src/`; `vendor/` is external
/// code and exempt from all passes except the unsafe-attribute check).
pub fn load_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut rels = source::rust_files_under(root, "crates")?;
    rels.extend(source::rust_files_under(root, "src")?);
    rels.sort();
    rels.iter().map(|rel| SourceFile::load(root, rel)).collect()
}

/// Runs every pass over the workspace at `root` and aggregates the
/// findings.  `Err` is reserved for environmental failures (unreadable
/// workspace); analysis findings always come back as an `Ok` report.
pub fn run_check(root: &Path) -> Result<Report, String> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))
        .map_err(|e| format!("cannot read {}/Cargo.toml: {e}", root.display()))?;
    let files = load_workspace(root)?;
    let mut report = Report::default();
    let mut used: BTreeSet<(String, u32)> = BTreeSet::new();

    // Pass 1: plaintext egress over the wire-adjacent crates.
    let egress_files: Vec<&SourceFile> = files
        .iter()
        .filter(|f| EGRESS_DIRS.iter().any(|d| f.rel.starts_with(d)))
        .collect();
    let fn_count: usize = egress_files.iter().map(|f| f.functions().len()).sum();
    let (findings, u) = egress::check(&egress_files);
    report.summary.push(format!(
        "plaintext-egress: {} file(s), {fn_count} function(s), {} finding(s)",
        egress_files.len(),
        findings.len()
    ));
    report.findings.extend(findings);
    used.extend(u);

    // Pass 2: lock-order graph over the daemon's concurrent path.
    let lock_files: Vec<&SourceFile> = files
        .iter()
        .filter(|f| LOCK_FILES.contains(&f.rel.as_str()))
        .collect();
    let (findings, u, summary) = lockorder::check(&lock_files);
    report.summary.push(summary);
    report.findings.extend(findings);
    used.extend(u);

    // Pass 3: panic audit — hot-path forbid plus the workspace ratchet.
    let hot: BTreeSet<&str> = HOT_FILES.iter().copied().collect();
    let baseline = fs::read_to_string(root.join(RATCHET_FILE))
        .ok()
        .and_then(|text| panics::parse_ratchet(&text));
    let file_refs: Vec<&SourceFile> = files.iter().collect();
    let (findings, u, summary, _count) = panics::check(&file_refs, &hot, baseline, RATCHET_FILE);
    report.summary.push(summary);
    report.findings.extend(findings);
    used.extend(u);

    // Pass 4: telemetry redaction over the whole workspace — any crate
    // may instrument itself, so any crate can leak through a label.
    let emission_count: usize = file_refs
        .iter()
        .map(|f| {
            f.toks
                .iter()
                .filter(|t| redaction::SINKS.iter().any(|s| t.is_ident(s)))
                .count()
        })
        .sum();
    let (findings, u) = redaction::check(&file_refs);
    report.summary.push(format!(
        "telemetry-redaction: {} file(s), {emission_count} emission site(s), {} finding(s)",
        file_refs.len(),
        findings.len()
    ));
    report.findings.extend(findings);
    used.extend(u);

    // Pass 5: hot-path allocation lint over the per-frame codec files.
    let alloc_files: Vec<&SourceFile> = files
        .iter()
        .filter(|f| HOT_ALLOC_FILES.contains(&f.rel.as_str()))
        .collect();
    let (findings, u) = alloc::check(&alloc_files);
    report.summary.push(format!(
        "hot-alloc: {} codec file(s), {} finding(s)",
        alloc_files.len(),
        findings.len()
    ));
    report.findings.extend(findings);
    used.extend(u);

    // Pass 6: unsafe-code attribute on every workspace crate root.
    let (findings, summary) = attributes::check(root, &manifest);
    report.summary.push(summary);
    report.findings.extend(findings);

    // Pass 7: annotation hygiene.  Every harvested allow must name a
    // known pass and have suppressed something this run.
    let mut stale = 0usize;
    for file in &files {
        for allow in &file.allows {
            if !KNOWN_PASSES.contains(&allow.pass.as_str()) {
                stale += 1;
                report.findings.push(Finding {
                    pass: "annotations",
                    file: file.rel.clone(),
                    line: allow.line,
                    message: format!(
                        "`pds-allow: {}` names an unknown pass; known passes are {}",
                        allow.pass,
                        KNOWN_PASSES.join(", ")
                    ),
                });
            } else if !used.contains(&(file.rel.clone(), allow.line)) {
                stale += 1;
                report.findings.push(Finding {
                    pass: "annotations",
                    file: file.rel.clone(),
                    line: allow.line,
                    message: format!(
                        "stale `pds-allow: {}` — it no longer suppresses any \
                         finding; remove it so the suppression inventory stays \
                         honest",
                        allow.pass
                    ),
                });
            }
        }
    }
    let allow_total: usize = files.iter().map(|f| f.allows.len()).sum();
    report.summary.push(format!(
        "annotations: {allow_total} pds-allow annotation(s), {} in active use, {stale} stale/unknown",
        used.len()
    ));

    Ok(report)
}

/// Counts the current workspace panic sites (for `pds-analyze ratchet`).
pub fn current_panic_count(root: &Path) -> Result<u64, String> {
    let files = load_workspace(root)?;
    let mut used = Vec::new();
    let mut count = 0u64;
    for file in &files {
        count += panics::sites_in(file, &mut used).len() as u64;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_constants_are_consistent() {
        for f in LOCK_FILES {
            assert!(
                EGRESS_DIRS.iter().any(|d| f.starts_with(d)),
                "lock files live in wire-adjacent crates"
            );
        }
        for f in HOT_FILES {
            assert!(EGRESS_DIRS.iter().any(|d| f.starts_with(d)));
        }
        for f in HOT_ALLOC_FILES {
            assert!(
                EGRESS_DIRS.iter().any(|d| f.starts_with(d)),
                "codec files live in wire-adjacent crates"
            );
        }
    }
}
