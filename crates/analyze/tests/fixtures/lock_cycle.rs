// Fixture: POSITIVE for the lock-order pass.
//
// `ship` nests registry under pool; `drain` nests pool under registry —
// a classic AB/BA inversion, here split across a call boundary so the
// interprocedural (transitive-acquire) half of the pass is what has to
// find it: `drain` holds `registry` and calls the free function
// `take_pooled`, which acquires `pool`.

pub fn ship(pool: &Pool, registry: &Registry) {
    let conn = pool.lock();
    registry.lock().mark(&conn);
}

pub fn drain(pool: &Pool, registry: &Registry) {
    let guard = registry.lock();
    for _id in guard.ids() {
        take_pooled(pool);
    }
}

fn take_pooled(pool: &Pool) {
    let _conn = pool.lock();
}
