// Fixture: POSITIVE for the hot-alloc lint when treated as a codec file.
//
// Four distinct site shapes: `Vec::new()`, `Vec::with_capacity(..)`,
// `vec![..]`, `.to_vec()`.  The `Vec<Vec<u8>>` type position and the
// `into_vec` call are decoys — exact-token matching must not count them.

pub fn encode(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(payload);
    out
}

pub fn encode_sized(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(payload);
    out
}

pub fn trailer(crc: u32) -> Vec<u8> {
    vec![
        (crc >> 24) as u8,
        (crc >> 16) as u8,
        (crc >> 8) as u8,
        crc as u8,
    ]
}

pub fn copy_out(frame: &[u8], free: &mut Vec<Vec<u8>>) -> Vec<u8> {
    let copy = frame.to_vec();
    let recycled: Vec<u8> = free.pop().unwrap_or_default();
    drop(recycled);
    let boxed: Box<[u8]> = Box::from(frame);
    boxed.into_vec()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_allocates_freely() {
        let scratch = vec![0u8; 64];
        let copy = scratch.to_vec();
        assert_eq!(super::encode(&copy).len(), 64);
    }
}
