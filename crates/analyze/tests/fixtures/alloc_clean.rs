// Fixture: NEGATIVE for the hot-alloc lint — the codec path takes its
// buffer from the pool's free list, grows it in place, and hands it
// back; nothing starts a fresh heap allocation per frame.

pub fn encode_pooled(payload: &[u8], free: &mut Vec<Vec<u8>>) -> Vec<u8> {
    let mut out: Vec<u8> = free.pop().unwrap_or_default();
    out.clear();
    out.extend_from_slice(payload);
    // a comment saying Vec::new() does not count
    let label = "neither does .to_vec() in a string";
    debug_assert!(!label.is_empty());
    out
}

pub fn recycle(buf: Vec<u8>, free: &mut Vec<Vec<u8>>) {
    free.push(buf);
}
