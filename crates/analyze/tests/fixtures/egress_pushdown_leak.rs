// Fixture: POSITIVE for the plaintext-egress lint, pushdown path.
//
// `push_sensitive_filter` builds a predicate over the sensitive attribute
// (`sensitive_attr`) and frames it for cloud-side evaluation
// (`write_predicate`) with no pds-crypto boundary ident in scope — the
// exact shape of a residual leaking what the binning is meant to hide.

pub fn push_sensitive_filter(out: &mut Vec<u8>, sensitive_attr: u32, lo: i64, hi: i64) {
    let predicate = range_over(sensitive_attr, lo, hi);
    write_predicate(out, &predicate);
}

fn range_over(attr: u32, lo: i64, hi: i64) -> Vec<u8> {
    let mut p = attr.to_be_bytes().to_vec();
    p.extend_from_slice(&lo.to_be_bytes());
    p.extend_from_slice(&hi.to_be_bytes());
    p
}

fn write_predicate(out: &mut Vec<u8>, p: &[u8]) {
    out.push(p.len() as u8);
    out.extend_from_slice(p);
}
