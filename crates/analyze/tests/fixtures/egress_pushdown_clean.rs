// Fixture: NEGATIVE for the plaintext-egress lint, pushdown path.
//
// Two functions the extended lint must keep quiet about:
//  * `push_office_filter` frames a residual over a *non-sensitive*
//    attribute (`office_attr`) — predicates on clear-text attributes ride
//    the wire by design;
//  * `filter_sensitive_owner_side` touches the sensitive attribute but
//    never nears a pushdown sink — owner-side residual evaluation is the
//    sanctioned home for such predicates.

pub fn push_office_filter(out: &mut Vec<u8>, office_attr: u32, lo: i64, hi: i64) {
    let predicate = range_over(office_attr, lo, hi);
    write_predicate(out, &predicate);
}

pub fn filter_sensitive_owner_side(rows: &mut Vec<i64>, sensitive_attr: i64) {
    rows.retain(|&v| v != sensitive_attr);
}

fn range_over(attr: u32, lo: i64, hi: i64) -> Vec<u8> {
    let mut p = attr.to_be_bytes().to_vec();
    p.extend_from_slice(&lo.to_be_bytes());
    p.extend_from_slice(&hi.to_be_bytes());
    p
}

fn write_predicate(out: &mut Vec<u8>, p: &[u8]) {
    out.push(p.len() as u8);
    out.extend_from_slice(p);
}
