// Fixture: NEGATIVE for the plaintext-egress lint, twice over.
//
// `ship_encrypted` has source + sink but routes through the pds_crypto
// boundary; `ship_public` writes only non-sensitive data (exact-token
// matching must not confuse `nonsensitive_values` with the source ident).

use std::io::Write;
use std::net::TcpStream;

pub fn ship_encrypted(stream: &mut TcpStream, sensitive_values: &[u8]) {
    let cipher = pds_crypto_stub::encrypt(sensitive_values);
    let _ = stream.write_all(&cipher);
}

pub fn ship_public(stream: &mut TcpStream, nonsensitive_values: &[u8]) {
    let _ = stream.write_all(nonsensitive_values);
}

mod pds_crypto_stub {
    pub fn encrypt(plain: &[u8]) -> Vec<u8> {
        plain.iter().map(|b| b ^ 0x5a).collect()
    }
}
