// Fixture: a real egress match suppressed by an audited annotation.

use std::io::Write;
use std::net::TcpStream;

// pds-allow: plaintext-egress(loopback-only debug channel; carries synthetic fixtures, never tenant data)
pub fn ship_debug(stream: &mut TcpStream, sensitive_values: &[u8]) {
    let _ = stream.write_all(sensitive_values);
}
