//! Positive fixture for the telemetry-redaction lint: emission calls
//! whose argument lists carry sensitive plaintext.  Each leaking fn is a
//! distinct shape the pass must catch.

/// Leak shape 1: a sensitive identifier recorded as a metric label value.
fn report_bin_contents(sensitive_values: &[u64]) {
    let registry = pds_obs::global();
    registry.counter_add(
        "pds_bin_values_total",
        &[("value", &format!("{:?}", sensitive_values))],
        1,
    );
}

/// Leak shape 2: a decrypted tuple's field flowing into a gauge.
fn gauge_decrypted(decrypted: f64) {
    pds_obs::global().gauge_set("pds_last_value", &[], decrypted);
}

/// Leak shape 3: sensitive data interpolated into a trace meta line.
fn trace_sensitive(out: &mut String, sensitive_tuples: &str) {
    pds_obs::trace::meta_line(out, "payload", sensitive_tuples);
}

/// Clean control in the same file: the span is opened *next to* the
/// sensitive data, but the emission's argument list is a static name —
/// exactly the instrumented-function shape that must NOT be flagged.
fn instrumented_episode(sensitive_values: &[u64]) -> usize {
    let _span = pds_obs::obs_span("episode.execute");
    sensitive_values.len()
}
