// Fixture: NEGATIVE for the hot-alloc lint — the one allocation is the
// pool's audited cold path, annotated with a reason.

pub fn checkout(free: &mut Vec<Vec<u8>>) -> Vec<u8> {
    match free.pop() {
        Some(mut buf) => {
            buf.clear();
            buf
        }
        // pds-allow: hot-alloc(cold path: empty free list on first use; every warm-path frame reuses a returned buffer)
        None => Vec::new(),
    }
}
