//! Negative fixture for the telemetry-redaction lint: heavily
//! instrumented code that handles sensitive plaintext but only ever
//! passes static names, aggregate counts, and non-sensitive labels to
//! the `pds-obs` emission API.

/// Instrumented work over sensitive data: the span name is static and
/// the histogram sample is a duration, not a value.
fn run_sensitive_episode(sensitive_values: &[u64], decrypted_tuples: usize) -> usize {
    let _span = pds_obs::obs_span("episode.execute");
    let registry = pds_obs::global();
    registry.counter_add("pds_tuples_returned_total", &[("tenant", "7")], 1);
    registry.hist_observe("pds_episode_ms", &[], 3.5);
    sensitive_values.len() + decrypted_tuples
}

/// Aggregates over sensitive loads are fine: only the derived statistic
/// reaches the registry, under a non-sensitive name.
fn flush_uniformity(loads: &[usize]) {
    let mean = loads.iter().sum::<usize>() as f64 / loads.len().max(1) as f64;
    pds_obs::global().gauge_set("pds_bin_load_uniformity", &[("shard", "0")], mean);
}

/// Manual cross-thread interval with clean endpoints.
fn record_queue_wait(enqueued_ns: u64) {
    pds_obs::record_manual("daemon.queue", enqueued_ns, pds_obs::now_ns());
}

/// An audited exception: the reason-bearing annotation suppresses the
/// finding and is reported as used.
// pds-allow: telemetry-redaction(test-only fixture demonstrating the audited escape hatch)
fn audited_debug_dump(sensitive_attr: u32) {
    pds_obs::global().gauge_set("pds_debug_attr", &[], sensitive_attr as f64);
}
