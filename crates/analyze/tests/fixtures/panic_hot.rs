// Fixture: POSITIVE for the panic-path audit when treated as a hot file.
//
// Three distinct site shapes: `.unwrap()`, `.expect(..)`, `panic!`.  The
// `unwrap_or_else` is a decoy — exact-token matching must not count it.

pub fn decode(bytes: &[u8]) -> u32 {
    let first = bytes.first().unwrap();
    let second = bytes.get(1).expect("length checked by caller");
    if *first == 0xff {
        panic!("reserved tag");
    }
    let third = bytes.get(2).copied().unwrap_or_else(|| 0);
    u32::from(*first) << 16 | u32::from(*second) << 8 | u32::from(third)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        super::decode(&[1, 2, 3]);
        let x: Option<u8> = Some(1);
        x.unwrap();
    }
}
