// Fixture: NEGATIVE for the panic-path audit — every site is either
// annotated, a non-panicking lookalike, or hidden in a literal/comment.

pub fn decode(bytes: &[u8]) -> u32 {
    // pds-allow: panic-path(index 0 proven in-bounds by the framing layer's length check)
    let first = bytes.first().unwrap();
    let second = bytes.get(1).copied().unwrap_or_default();
    // a comment saying panic! does not count
    let label = "neither does .unwrap() in a string";
    u32::from(*first) << 8 | u32::from(second) | label.len() as u32
}
