// Fixture: NEGATIVE for the lock-order pass.
//
// Both paths take `pool` before `registry`: the nesting graph has one
// edge and no cycle.  `release` takes each lock in turn but never nests —
// a temporary guard dies at its statement's end, so pool is not held when
// registry is taken.

pub fn ship(pool: &Pool, registry: &Registry) {
    let conn = pool.lock();
    registry.lock().mark(&conn);
}

pub fn audit(pool: &Pool, registry: &Registry) {
    let conn = pool.lock();
    let reg = registry.lock();
    reg.check(&conn);
}

pub fn release(pool: &Pool, registry: &Registry) {
    pool.lock().compact();
    registry.lock().compact();
}
