// Fixture: POSITIVE for the plaintext-egress lint.
//
// `ship_bin` touches sensitive plaintext (`sensitive_values`) and a wire
// sink (`write_all` on a `TcpStream`) with no pds-crypto boundary ident
// anywhere in scope — the exact shape of the leak the lint exists for.

use std::io::Write;
use std::net::TcpStream;

pub fn ship_bin(stream: &mut TcpStream, sensitive_values: &[u8]) {
    let framed = frame(sensitive_values);
    let _ = stream.write_all(&framed);
}

fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = vec![body.len() as u8];
    out.extend_from_slice(body);
    out
}
