//! Integration tests for `pds-analyze`: each pass against its fixture
//! corpus (positive and negative), then the full analyzer against the
//! real workspace — the same invocation CI gates on.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use pds_analyze::source::SourceFile;
use pds_analyze::{alloc, egress, lockorder, panics, redaction};

fn fixture(name: &str) -> SourceFile {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    SourceFile::load(&dir, name).expect("fixture file is readable")
}

#[test]
fn egress_lint_flags_the_leak_fixture() {
    let file = fixture("egress_leak.rs");
    let (findings, used) = egress::check(&[&file]);
    assert_eq!(findings.len(), 1, "exactly the leaking fn: {findings:?}");
    assert!(findings[0].message.contains("ship_bin"));
    assert!(findings[0].message.contains("sensitive_values"));
    assert!(used.is_empty());
}

#[test]
fn egress_lint_accepts_boundary_and_nonsensitive_traffic() {
    let file = fixture("egress_clean.rs");
    let (findings, used) = egress::check(&[&file]);
    assert!(findings.is_empty(), "clean fixture flagged: {findings:?}");
    assert!(used.is_empty());
}

#[test]
fn egress_lint_flags_sensitive_predicates_on_the_pushdown_path() {
    let file = fixture("egress_pushdown_leak.rs");
    let (findings, used) = egress::check(&[&file]);
    assert_eq!(findings.len(), 1, "exactly the pushing fn: {findings:?}");
    assert!(findings[0].message.contains("push_sensitive_filter"));
    assert!(findings[0].message.contains("sensitive_attr"));
    assert!(findings[0].message.contains("write_predicate"));
    assert!(used.is_empty());
}

#[test]
fn egress_lint_accepts_nonsensitive_and_owner_side_residuals() {
    let file = fixture("egress_pushdown_clean.rs");
    let (findings, used) = egress::check(&[&file]);
    assert!(
        findings.is_empty(),
        "clean pushdown fixture flagged: {findings:?}"
    );
    assert!(used.is_empty());
}

#[test]
fn egress_lint_honors_audited_allows_and_reports_them_used() {
    let file = fixture("egress_allowed.rs");
    let (findings, used) = egress::check(&[&file]);
    assert!(findings.is_empty(), "allowed fixture flagged: {findings:?}");
    assert_eq!(used.len(), 1, "the annotation must register as in-use");
}

#[test]
fn redaction_lint_flags_sensitive_arguments_to_emission_calls() {
    let file = fixture("redaction_leak.rs");
    let (findings, used) = redaction::check(&[&file]);
    assert_eq!(findings.len(), 3, "the three leaking fns: {findings:?}");
    assert!(findings
        .iter()
        .any(|f| f.message.contains("report_bin_contents")
            && f.message.contains("sensitive_values")
            && f.message.contains("counter_add")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("gauge_decrypted") && f.message.contains("decrypted")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("trace_sensitive")
            && f.message.contains("sensitive_tuples")
            && f.message.contains("meta_line")));
    // The instrumented control fn in the same file stays clean.
    assert!(!findings
        .iter()
        .any(|f| f.message.contains("instrumented_episode")));
    assert!(used.is_empty());
}

#[test]
fn redaction_lint_accepts_instrumented_functions_and_audited_allows() {
    let file = fixture("redaction_clean.rs");
    let (findings, used) = redaction::check(&[&file]);
    assert!(findings.is_empty(), "clean fixture flagged: {findings:?}");
    assert_eq!(used.len(), 1, "the annotation must register as in-use");
}

#[test]
fn alloc_lint_flags_every_fresh_allocation_shape() {
    let file = fixture("alloc_leak.rs");
    let (findings, used) = alloc::check(&[&file]);
    // Vec::new, Vec::with_capacity, vec!, .to_vec() — and NOT the
    // `Vec<Vec<u8>>` type decoy, the `into_vec` call, or the test module.
    assert_eq!(findings.len(), 4, "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("`Vec::new`")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`Vec::with_capacity`")));
    assert!(findings.iter().any(|f| f.message.contains("`vec!`")));
    assert!(findings.iter().any(|f| f.message.contains("`.to_vec()`")));
    assert!(used.is_empty());
}

#[test]
fn alloc_lint_accepts_the_pooled_codec_path() {
    let file = fixture("alloc_clean.rs");
    let (findings, used) = alloc::check(&[&file]);
    assert!(findings.is_empty(), "clean fixture flagged: {findings:?}");
    assert!(used.is_empty());
}

#[test]
fn alloc_lint_honors_the_audited_cold_path_allow() {
    let file = fixture("alloc_allowed.rs");
    let (findings, used) = alloc::check(&[&file]);
    assert!(findings.is_empty(), "allowed fixture flagged: {findings:?}");
    assert_eq!(used.len(), 1, "the annotation must register as in-use");
}

#[test]
fn lock_order_pass_finds_the_interprocedural_cycle() {
    let file = fixture("lock_cycle.rs");
    let (findings, used, summary) = lockorder::check(&[&file]);
    assert_eq!(findings.len(), 1, "one cycle expected: {findings:?}");
    assert!(findings[0].message.contains("lock_cycle.pool"));
    assert!(findings[0].message.contains("lock_cycle.registry"));
    assert!(summary.contains("CYCLIC"));
    assert!(used.is_empty());
}

#[test]
fn lock_order_pass_accepts_consistent_nesting() {
    let file = fixture("lock_clean.rs");
    let (findings, _used, summary) = lockorder::check(&[&file]);
    assert!(
        findings.is_empty(),
        "consistent order flagged: {findings:?}"
    );
    assert!(summary.contains("acyclic"));
}

#[test]
fn panic_audit_forbids_hot_path_sites_but_exempts_test_modules() {
    let file = fixture("panic_hot.rs");
    let hot: BTreeSet<&str> = ["panic_hot.rs"].into_iter().collect();
    let (findings, used, _summary, count) =
        panics::check(&[&file], &hot, Some(100), "ratchet.toml");
    // .unwrap(), .expect(..), panic! — and NOT the unwrap_or_else decoy or
    // anything inside #[cfg(test)].
    assert_eq!(count, 3, "{findings:?}");
    assert_eq!(findings.len(), 3);
    assert!(findings.iter().any(|f| f.message.contains("`unwrap`")));
    assert!(findings.iter().any(|f| f.message.contains("`expect`")));
    assert!(findings.iter().any(|f| f.message.contains("`panic!`")));
    assert!(used.is_empty());
}

#[test]
fn panic_audit_accepts_annotated_and_lookalike_sites() {
    let file = fixture("panic_allowed.rs");
    let hot: BTreeSet<&str> = ["panic_allowed.rs"].into_iter().collect();
    let (findings, used, _summary, count) = panics::check(&[&file], &hot, Some(0), "ratchet.toml");
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(count, 0);
    assert_eq!(used.len(), 1, "the annotation must register as in-use");
}

#[test]
fn panic_ratchet_fails_when_the_count_rises() {
    let file = fixture("panic_hot.rs");
    let hot: BTreeSet<&str> = BTreeSet::new();
    let (findings, _used, _summary, count) = panics::check(&[&file], &hot, Some(2), "ratchet.toml");
    assert_eq!(count, 3);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("rose to 3"));
    assert!(findings[0].message.contains("baseline is 2"));
}

#[test]
fn panic_ratchet_is_quiet_at_or_below_baseline() {
    let file = fixture("panic_hot.rs");
    let hot: BTreeSet<&str> = BTreeSet::new();
    let (findings, _used, _summary, _count) =
        panics::check(&[&file], &hot, Some(3), "ratchet.toml");
    assert!(findings.is_empty(), "{findings:?}");
}

/// The CI gate itself: every pass must come back clean on the live
/// workspace, with the committed ratchet honored.
#[test]
fn full_workspace_check_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = pds_analyze::run_check(&root).expect("workspace is analyzable");
    assert!(
        report.is_clean(),
        "workspace findings:\n{}",
        report.render()
    );
}

/// The fixtures directory must never leak into the production scan —
/// otherwise the positive fixtures would fail the real gate.
#[test]
fn fixtures_are_excluded_from_workspace_scans() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = pds_analyze::load_workspace(&root).expect("workspace is readable");
    assert!(files.iter().all(|f| !f.rel.contains("fixtures")));
    assert!(files.iter().all(|f| !f.rel.contains("/tests/")));
    assert!(
        files.iter().any(|f| f.rel == "crates/cloud/src/service.rs"),
        "the daemon source must be in scope"
    );
}

/// `--root` handling end to end: the hot-path list in lib.rs must point at
/// files that actually exist, or the forbid tier silently checks nothing.
#[test]
fn scope_lists_point_at_real_files() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    for rel in pds_analyze::HOT_FILES
        .iter()
        .chain(pds_analyze::LOCK_FILES)
        .chain(pds_analyze::HOT_ALLOC_FILES)
    {
        assert!(root.join(rel).is_file(), "scope entry {rel} does not exist");
    }
    for dir in pds_analyze::EGRESS_DIRS {
        assert!(Path::new(&root).join(dir).is_dir(), "{dir} does not exist");
    }
    assert!(root.join(pds_analyze::RATCHET_FILE).is_file());
}
