//! The paper's running Employee example, end to end (Examples 1–3,
//! Tables II and III).
//!
//! Shows the inference attack on naive partitioned execution and how Query
//! Binning removes it, reproducing the adversarial-view tables of §II/§IV.
//!
//! ```text
//! cargo run --example employee_scenario
//! ```

use partitioned_data_security::prelude::*;

fn main() -> Result<()> {
    let relation = employee_relation();
    let policy = employee_sensitivity_policy(&relation)?;
    let parts = Partitioner::new(policy).split(&relation)?;

    println!("Employee1 (EId, SSN)      : {} tuples, always encrypted", 8);
    println!(
        "Employee2 (Defense rows)  : {} tuples, encrypted",
        parts.sensitive.len()
    );
    println!(
        "Employee3 (Design rows)   : {} tuples, clear-text\n",
        parts.nonsensitive.len()
    );

    // ----- Naive partitioned execution (Example 2 / Table II) --------------
    println!("== Naive partitioned execution (no QB) ==");
    let mut naive = NaivePartitionedExecutor::new("EId", NonDetScanEngine::new());
    let mut owner = DbOwner::new(1);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    naive.outsource(&mut owner, &mut cloud, &parts)?;
    for eid in ["E259", "E101", "E199"] {
        naive.select(&mut owner, &mut cloud, &eid.into())?;
    }
    print!("{}", cloud.adversarial_view().render_table());
    println!("From this view the adversary learns, exactly as the paper describes:");
    println!("  * E259 works in both a sensitive and a non-sensitive department,");
    println!("  * E101 works only in a sensitive department,");
    println!("  * E199 works only in a non-sensitive department.");
    let matches = SurvivingMatches::from_view(cloud.adversarial_view());
    println!(
        "surviving-match ambiguity of the most exposed encrypted tuple: {:.2}\n",
        matches.min_ambiguity()
    );

    // ----- Query Binning (Example 3 / Table III) ----------------------------
    println!("== The same queries with Query Binning ==");
    let binning = QueryBinning::build(&parts, "EId", BinningConfig::default())?;
    let mut qb = QbExecutor::new(binning, NonDetScanEngine::new());
    let mut owner = DbOwner::new(1);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    qb.outsource(&mut owner, &mut cloud, &parts)?;
    for eid in ["E259", "E101", "E199"] {
        let answer = qb.select(&mut owner, &mut cloud, &eid.into())?;
        println!(
            "query {eid} -> {} tuple(s) after owner-side merge",
            answer.len()
        );
    }
    print!("{}", cloud.adversarial_view().render_table());

    // Ask about every remaining value too, then check the formal definition.
    for eid in ["E101", "E152", "E159", "E254"] {
        qb.select(&mut owner, &mut cloud, &eid.into())?;
    }
    let report = check_partitioned_security(cloud.adversarial_view());
    println!(
        "\npartitioned data security after an exhaustive workload: {}",
        if report.is_secure() {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "  association candidates intact: {} (dropped matches: {})",
        report.association_indistinguishable, report.dropped_matches
    );
    println!(
        "  output sizes indistinguishable: {} ({} distinct size(s))",
        report.counts_indistinguishable, report.distinct_output_sizes
    );
    Ok(())
}
