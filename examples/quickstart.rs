//! Quickstart: partition a relation, build Query Binning, outsource, query.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use partitioned_data_security::prelude::*;

fn main() -> Result<()> {
    // 1. A relation with a sensitivity policy: every tuple of the Defense
    //    department is sensitive (the paper's Example 1).
    let relation = employee_relation();
    let policy = employee_sensitivity_policy(&relation)?;
    let parts = Partitioner::new(policy).split(&relation)?;
    println!(
        "Partitioned {} tuples into {} sensitive + {} non-sensitive (alpha = {:.2})",
        relation.len(),
        parts.sensitive.len(),
        parts.nonsensitive.len(),
        parts.alpha()
    );

    // 2. Build the Query Binning metadata over the searchable attribute and
    //    outsource: the non-sensitive part goes up in clear-text, the
    //    sensitive part is non-deterministically encrypted.
    let binning = QueryBinning::build(&parts, "EId", BinningConfig::default())?;
    println!(
        "Bin layout: {} sensitive bins of <= {} values, {} non-sensitive bins of <= {} values",
        binning.shape().sensitive_bins,
        binning.shape().sensitive_bin_capacity,
        binning.shape().nonsensitive_bins,
        binning.shape().nonsensitive_bin_capacity
    );
    let mut executor = QbExecutor::new(binning, NonDetScanEngine::new());
    let mut owner = DbOwner::new(42);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    executor.outsource(&mut owner, &mut cloud, &parts)?;

    // 3. Query for an employee id. The answer merges tuples from the
    //    encrypted part (E259 works in Defense) and the clear-text part
    //    (E259 also works in Design).
    for eid in ["E259", "E101", "E199"] {
        let answer = executor.select(&mut owner, &mut cloud, &eid.into())?;
        println!("query {eid}: {} tuple(s)", answer.len());
        for t in &answer {
            println!("  {t:?}");
        }
    }

    // 4. What did the cloud (the adversary) see?
    println!("\nAdversarial view:");
    print!("{}", cloud.adversarial_view().render_table());
    let report = check_partitioned_security(cloud.adversarial_view());
    println!(
        "output sizes uniform across queries: {} ({} distinct size(s))",
        report.counts_indistinguishable, report.distinct_output_sizes
    );
    println!("(run `cargo run --example employee_scenario` for the full security analysis)");
    Ok(())
}
