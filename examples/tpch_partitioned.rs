//! A TPC-H-style deployment at laptop scale: sweep the sensitivity ratio α,
//! compare Query Binning against full encryption under several back-ends,
//! and exercise the range / aggregation extensions.
//!
//! ```text
//! cargo run --release --example tpch_partitioned
//! ```

use partitioned_data_security::core::cost::measured_eta;
use partitioned_data_security::prelude::*;
use partitioned_data_security::systems::cost::computation_time_for_queries;

fn main() -> Result<()> {
    // A scaled-down LINEITEM (the paper uses 150K–4.5M tuples; 20K keeps the
    // example under a second while preserving every structural property).
    let relation = TpchGenerator::new(TpchConfig {
        lineitem_tuples: 20_000,
        distinct_partkeys: 2_500,
        distinct_suppkeys: 150,
        skew: 0.0,
        seed: 42,
    })
    .lineitem();
    let attr = relation.schema().attr_id("L_PARTKEY")?;
    println!(
        "LINEITEM: {} tuples, {} distinct part keys, ~{} bytes/tuple\n",
        relation.len(),
        relation.distinct_values(attr).len(),
        relation.avg_tuple_bytes()
    );

    // ----- Full-encryption baseline -----------------------------------------
    let queries: Vec<Value> = relation.distinct_values(attr).into_iter().take(8).collect();
    let mut owner = DbOwner::new(1);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    let mut full = NonDetScanEngine::new();
    full.outsource(&mut owner, &mut cloud, &relation, attr)?;
    cloud.reset_metrics();
    owner.reset_metrics();
    for q in &queries {
        full.select(&mut owner, &mut cloud, std::slice::from_ref(q))?;
    }
    let mut full_metrics = *cloud.metrics();
    full_metrics.absorb(owner.metrics());
    let full_cost =
        computation_time_for_queries(&full_metrics, &full.cost_profile(), queries.len() as u64)
            + cloud.comm_time();
    println!(
        "full encryption (non-deterministic scan): {:.4} s for {} queries",
        full_cost,
        queries.len()
    );

    // ----- QB at several sensitivity ratios ----------------------------------
    println!("\nQuery Binning vs full encryption (measured eta = QB cost / full cost):");
    println!("{:>8} {:>14} {:>10}", "alpha", "QB cost (s)", "eta");
    for alpha in [0.05, 0.2, 0.4, 0.6, 0.8] {
        let policy = SensitivityAssigner::new(7).by_value_fraction(&relation, attr, alpha)?;
        let parts = Partitioner::new(policy).split(&relation)?;
        let binning = QueryBinning::build(&parts, "L_PARTKEY", BinningConfig::default())?;
        let mut executor = QbExecutor::new(binning, NonDetScanEngine::new());
        let mut owner = DbOwner::new(2);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        executor.outsource(&mut owner, &mut cloud, &parts)?;
        cloud.reset_metrics();
        owner.reset_metrics();
        for q in &queries {
            executor.select(&mut owner, &mut cloud, q)?;
        }
        let mut m = *cloud.metrics();
        m.absorb(owner.metrics());
        let qb_cost = computation_time_for_queries(
            &m,
            &executor.engine().cost_profile(),
            queries.len() as u64,
        ) + cloud.comm_time();
        println!(
            "{alpha:>8.2} {qb_cost:>14.4} {:>10.3}",
            measured_eta(qb_cost, full_cost)
        );
    }

    // ----- Extensions: range query and group-by aggregation ------------------
    println!("\nExtensions over a 40% sensitive deployment:");
    let policy = SensitivityAssigner::new(7).by_value_fraction(&relation, attr, 0.4)?;
    let parts = Partitioner::new(policy).split(&relation)?;
    let binning = QueryBinning::build(&parts, "L_PARTKEY", BinningConfig::default())?;
    let mut executor = QbExecutor::new(binning, NonDetScanEngine::new());
    let mut owner = DbOwner::new(3);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    executor.outsource(&mut owner, &mut cloud, &parts)?;

    let lo = Value::Int(10);
    let hi = Value::Int(25);
    let in_range = select_range(&mut executor, &mut owner, &mut cloud, &lo, &hi)?;
    println!(
        "  range query L_PARTKEY in [10, 25]: {} tuples",
        in_range.len()
    );

    let qty = relation.schema().attr_id("L_QUANTITY")?;
    let groups: Vec<Value> = (1..=5i64).map(Value::Int).collect();
    let aggregates = group_by_aggregate(&mut executor, &mut owner, &mut cloud, &groups, qty)?;
    for (group, agg) in &aggregates {
        println!(
            "  part key {group}: count={}, sum(qty)={}, min={:?}, max={:?}",
            agg.count, agg.sum, agg.min, agg.max
        );
    }
    Ok(())
}
