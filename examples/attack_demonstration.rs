//! Attack demonstration (§I and §VI): size, frequency-count and
//! workload-skew attacks against a weak indexable back-end (Arx-style),
//! with and without Query Binning.
//!
//! ```text
//! cargo run --example attack_demonstration
//! ```

use std::collections::HashMap;

use partitioned_data_security::adversary::size_attack::SizeAttackGroundTruth;
use partitioned_data_security::adversary::{FrequencyAttack, SizeAttack, WorkloadSkewAttack};
use partitioned_data_security::prelude::*;

fn skewed_payroll() -> Relation {
    // A low-entropy salary column: a classic frequency-attack target.
    let schema =
        Schema::from_pairs(&[("Salary", DataType::Int), ("Name", DataType::Text)]).expect("schema");
    let mut r = Relation::new("Payroll", schema);
    let salaries = [50_000i64; 12]
        .iter()
        .chain([65_000i64; 6].iter())
        .chain([80_000i64; 3].iter())
        .chain([120_000i64; 1].iter())
        .copied()
        .collect::<Vec<_>>();
    for (i, s) in salaries.iter().enumerate() {
        r.insert(vec![Value::Int(*s), Value::from(format!("employee-{i}"))])
            .expect("row");
    }
    r
}

fn main() -> Result<()> {
    let relation = skewed_payroll();
    let attr = relation.schema().attr_id("Salary")?;

    // ----- Frequency-count attack against deterministic encryption ----------
    println!("== Frequency-count attack against a deterministic-encryption index ==");
    let mut owner = DbOwner::new(7);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    let mut det = DeterministicIndexEngine::new();
    det.outsource(&mut owner, &mut cloud, &relation, attr)?;
    let auxiliary: HashMap<Value, u64> = relation
        .attribute_stats(attr)
        .iter()
        .map(|(v, c)| (v.clone(), c))
        .collect();
    let mut ground_truth = HashMap::new();
    for t in relation.tuples() {
        ground_truth.insert(owner.det_tag(t.value(attr)), t.value(attr).clone());
    }
    let outcome = FrequencyAttack::run(cloud.encrypted_store(), &auxiliary, &ground_truth);
    println!(
        "  {} distinct tags on the cloud; {:.0}% of tuples' salaries recovered\n",
        outcome.distinct_tags,
        outcome.recovery_rate * 100.0
    );

    // ----- Size + workload-skew attacks: naive partitioning vs QB ----------
    let policy = SensitivityPolicy::rows(Predicate::range(relation.schema(), "Salary", 0, 70_000)?);
    let parts = Partitioner::new(policy).split(&relation)?;
    let values: Vec<Value> = relation.distinct_values(attr);

    let run_attacks = |cloud: &CloudServer, issued: &[Value]| {
        let truth = SizeAttackGroundTruth {
            queried_values: issued.to_vec(),
            sensitive_counts: parts
                .sensitive
                .attribute_stats(parts.sensitive.schema().attr_id("Salary").unwrap())
                .iter()
                .map(|(v, c)| (v.clone(), c))
                .collect(),
        };
        let size = SizeAttack::run(cloud.adversarial_view(), &truth);
        let skew = WorkloadSkewAttack::run(cloud.adversarial_view(), &values, issued);
        let report = check_partitioned_security(cloud.adversarial_view());
        (size, skew, report)
    };

    println!("== Size / workload-skew attacks without QB ==");
    let mut naive = NaivePartitionedExecutor::new("Salary", ArxEngine::new());
    let mut owner = DbOwner::new(8);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    naive.outsource(&mut owner, &mut cloud, &parts)?;
    let mut issued = Vec::new();
    for v in &values {
        for _ in 0..3 {
            naive.select(&mut owner, &mut cloud, v)?;
            issued.push(v.clone());
        }
    }
    let (size, skew, report) = run_attacks(&cloud, &issued);
    println!(
        "  size attack reads exact sensitive counts for {:.0}% of queries; {} distinct output sizes",
        size.exact_rate * 100.0,
        size.distinct_sizes
    );
    println!(
        "  workload-skew attack links hot values to fingerprints with {:.0}% accuracy",
        skew.hit_rate * 100.0
    );
    println!(
        "  partitioned data security: {}\n",
        if report.is_secure() {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );

    println!("== The same workload through QB + Arx ==");
    let binning = QueryBinning::build(&parts, "Salary", BinningConfig::default())?;
    let mut qb = QbExecutor::new(binning, ArxEngine::new());
    let mut owner = DbOwner::new(8);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    qb.outsource(&mut owner, &mut cloud, &parts)?;
    let mut issued = Vec::new();
    for v in &values {
        for _ in 0..3 {
            qb.select(&mut owner, &mut cloud, v)?;
            issued.push(v.clone());
        }
    }
    let (size, skew, report) = run_attacks(&cloud, &issued);
    println!(
        "  size attack exact-count rate drops to {:.0}%; {} distinct output size(s)",
        size.exact_rate * 100.0,
        size.distinct_sizes
    );
    println!(
        "  workload-skew fingerprints now hide {:.1} values each (hit rate {:.0}%)",
        skew.mean_anonymity_set,
        skew.hit_rate * 100.0
    );
    println!(
        "  partitioned data security: {}",
        if report.is_secure() {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    Ok(())
}
