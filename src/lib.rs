//! # partitioned-data-security
//!
//! A from-scratch Rust reproduction of *Partitioned Data Security on
//! Outsourced Sensitive and Non-sensitive Data* (S. Mehrotra, S. Sharma,
//! J. D. Ullman, A. Mishra — ICDE 2019): the **Query Binning (QB)**
//! technique for securely and efficiently running selection queries over a
//! relation split into an encrypted sensitive part and a clear-text
//! non-sensitive part, both hosted on an untrusted public cloud.
//!
//! This crate is a facade: it re-exports the workspace crates so examples
//! and downstream users can depend on a single package.
//!
//! | Re-export | Contents |
//! |---|---|
//! | [`common`] | values, domains, identifiers, errors |
//! | [`crypto`] | AES-128, SHA-256, HMAC, PRF/PRP, non-deterministic & deterministic encryption, OPE, Shamir secret sharing, DPF |
//! | [`storage`] | in-memory relational engine, indexes, statistics, sensitivity partitioning |
//! | [`cloud`] | untrusted cloud simulator, adversarial view, network model, the trusted DB owner |
//! | [`systems`] | secure selection back-ends (non-deterministic scan, CryptDB-style, Arx-style, secret sharing, DPF, Opaque/Jana simulators) |
//! | [`adversary`] | surviving-matches analysis, size / frequency / workload-skew attacks, the partitioned-data-security checker |
//! | [`core`] | **Query Binning**: bin creation, bin retrieval, the end-to-end executor, the η cost model and the range/insert/aggregate/join extensions |
//! | [`workload`] | the paper's Employee example, pseudo-TPC-H generators, Zipf workloads, sensitivity assigners |
//!
//! ## Quickstart
//!
//! ```
//! use partitioned_data_security::prelude::*;
//!
//! // 1. The paper's Employee relation, partitioned by the Example-1 policy.
//! let relation = employee_relation();
//! let policy = employee_sensitivity_policy(&relation).unwrap();
//! let parts = Partitioner::new(policy).split(&relation).unwrap();
//!
//! // 2. Build Query Binning over the searchable attribute and outsource.
//! let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
//! let mut executor = QbExecutor::new(binning, NonDetScanEngine::new());
//! let mut owner = DbOwner::new(42);
//! let mut cloud = CloudServer::new(NetworkModel::paper_wan());
//! executor.outsource(&mut owner, &mut cloud, &parts).unwrap();
//!
//! // 3. Query; the answer spans the encrypted and the clear-text part.
//! let answer = executor.select(&mut owner, &mut cloud, &"E259".into()).unwrap();
//! assert_eq!(answer.len(), 2);
//!
//! // 4. The recorded adversarial view satisfies partitioned data security.
//! let report = check_partitioned_security(cloud.adversarial_view());
//! assert!(report.counts_indistinguishable);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pds_adversary as adversary;
pub use pds_cloud as cloud;
pub use pds_common as common;
pub use pds_core as core;
pub use pds_crypto as crypto;
pub use pds_storage as storage;
pub use pds_systems as systems;
pub use pds_workload as workload;

/// The most commonly used items, importable with a single `use`.
pub mod prelude {
    pub use pds_adversary::{
        check_partitioned_security, check_sharded_partitioned_security, SecurityReport,
        ShardedSecurityReport, SurvivingMatches,
    };
    pub use pds_cloud::{
        AdversarialView, BinCache, BinCacheStats, BinEpisodeRequest, BinKey, BinKind, BinPlacement,
        BinRoutedCloud, BinTransport, CloudServer, CloudSession, DbOwner, Metrics, NetworkModel,
        ShardRouter,
    };
    pub use pds_common::{Domain, PdsError, Result, Value};
    pub use pds_core::executor::NaivePartitionedExecutor;
    pub use pds_core::extensions::{equi_join, group_by_aggregate, select_range, InsertPlanner};
    pub use pds_core::{
        choose_engines, BinShape, BinningConfig, CostModel, EngineCandidate, EtaModel, PlanMode,
        PlannerConfig, QbExecutor, QueryBinning, QueryPlan, SelectionStats, ShardPlan,
        TransportedRun,
    };
    pub use pds_storage::{
        Attribute, DataType, Partitioner, Predicate, Relation, Schema, SelectionQuery,
        SensitivityPolicy, Tuple,
    };
    pub use pds_systems::{
        ArxEngine, DeterministicIndexEngine, DpfEngine, JanaSimEngine, NonDetScanEngine,
        SecretSharingEngine, SecureSelectionEngine,
    };
    pub use pds_workload::{
        employee_relation, employee_sensitivity_policy, QueryWorkload, SensitivityAssigner,
        TpchConfig, TpchGenerator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable() {
        let relation = employee_relation();
        assert_eq!(relation.len(), 8);
        let shape = BinShape::for_counts(10, 10).unwrap();
        assert_eq!(shape.sensitive_bins, 5);
        let model = EtaModel::new(0.3, 0.01, 1000.0, 100.0, 10, 10, 1000);
        assert!(model.eta_simplified() < 1.0);
    }
}
