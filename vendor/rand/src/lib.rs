//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! Provides [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`, `fill`) and [`rngs::StdRng`]. The
//! generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! statistically solid for simulation, and **not** a CSPRNG. All the
//! cryptography in this workspace lives in `pds-crypto`; this crate only
//! drives workload generation, nonce material for the simulator, and
//! shuffles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over half-open / inclusive ranges.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`. Panics if `low > high`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Multiply-shift maps a uniform u64 onto [0, span) with
                // bias below 2^-32 for the spans used in this workspace.
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as $wide).wrapping_add(offset as $wide)) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return (rng.next_u64() as $wide).wrapping_add(low as $wide) as $t;
                }
                let offset = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                ((low as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                low + <$t as Standard>::sample(rng) * (high - low)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                low + <$t as Standard>::sample(rng) * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Collection types fillable with random data via [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with random data.
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl Fill for [u32] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for word in self.iter_mut() {
            *word = rng.next_u32();
        }
    }
}

impl Fill for [u64] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for word in self.iter_mut() {
            *word = rng.next_u64();
        }
    }
}

impl<T, const N: usize> Fill for [T; N]
where
    [T]: Fill,
{
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        self.as_mut_slice().try_fill(rng);
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Overwrites `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.try_fill(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64. Not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the seeding scheme xoshiro recommends.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x: i64 = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&x));
            let y: u8 = rng.gen_range(3u8..=9);
            assert!((3..=9).contains(&y));
            let f: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn fill_covers_remainders_and_arrays() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut bytes = vec![0u8; 13];
        rng.fill(bytes.as_mut_slice());
        assert!(bytes.iter().any(|&b| b != 0));
        let mut arr = [0u8; 16];
        rng.fill(&mut arr);
        assert!(arr.iter().any(|&b| b != 0));
    }
}
