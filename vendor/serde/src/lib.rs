//! Offline stand-in for `serde`.
//!
//! The workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]` so they are ready for wire formats,
//! but nothing in-tree serializes yet and the build environment has no
//! crates.io access. This proc-macro crate supplies **no-op** derive macros
//! under the same names so the annotations compile. Replacing it with the
//! real `serde` (with the `derive` feature) is a one-line change in the
//! root `Cargo.toml`'s `[workspace.dependencies]`.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`. Emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`. Emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
