//! Offline stand-in for the parts of `criterion` 0.5 this workspace uses.
//!
//! Provides [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Instead of criterion's full statistical machinery it runs each benchmark
//! for a fixed, small number of wall-clock samples and prints the mean,
//! min, max and standard deviation over the per-iteration timings — enough
//! to compare hot paths between commits (and to spot noisy ones) while
//! keeping `cargo bench` wired up until the real crate can be pulled from a
//! registry. Sample counts can be tuned per group via
//! [`BenchmarkGroup::sample_size`] or globally with the
//! `CRITERION_SAMPLES` environment variable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque barrier preventing the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver; collects and prints results.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: default_samples(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = default_samples();
        self.record(id.to_string(), samples, f);
        self
    }

    fn record<F>(&mut self, label: String, samples: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(samples),
        };
        for _ in 0..samples {
            f(&mut bencher);
        }
        let stats = SampleStats::from_samples(&bencher.samples);
        println!(
            "{label:<60} time: [{:>10.2?} {:>10.2?} {:>10.2?}] std dev: {:>10.2?} ({} iters)",
            stats.min,
            stats.mean,
            stats.max,
            stats.std_dev,
            bencher.samples.len()
        );
        self.results.push((label, stats.mean));
    }

    /// Prints the closing summary. Called by [`criterion_main!`].
    pub fn final_summary(&self) {
        println!("benchmarked {} target(s)", self.results.len());
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark in this group takes. A
    /// `CRITERION_SAMPLES` env setting still wins, so CI can globally
    /// bound bench runtime.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = env_samples().unwrap_or(n);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size;
        self.criterion.record(label, samples, f);
        self
    }

    /// Benchmarks `f` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size;
        self.criterion.record(label, samples, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Summary statistics over a set of per-iteration timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleStats {
    /// Arithmetic mean of the samples.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Population standard deviation of the samples.
    pub std_dev: Duration,
}

impl SampleStats {
    /// Computes mean/min/max/std-dev over `samples` (all zero when empty).
    pub fn from_samples(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return SampleStats {
                mean: Duration::ZERO,
                min: Duration::ZERO,
                max: Duration::ZERO,
                std_dev: Duration::ZERO,
            };
        }
        let n = samples.len() as f64;
        let secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
        let mean_secs = secs.iter().sum::<f64>() / n;
        let variance = secs.iter().map(|s| (s - mean_secs).powi(2)).sum::<f64>() / n;
        SampleStats {
            mean: Duration::from_secs_f64(mean_secs),
            min: *samples.iter().min().expect("nonempty"),
            max: *samples.iter().max().expect("nonempty"),
            std_dev: Duration::from_secs_f64(variance.sqrt()),
        }
    }
}

/// Measures the timed routine handed to it by a benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one call of `routine` and records the measurement as one
    /// sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn env_samples() -> Option<usize> {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
}

fn default_samples() -> usize {
    env_samples().unwrap_or(10)
}

/// Bundles benchmark functions into a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; accept and ignore.
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
        assert_eq!(c.results.len(), 2);
    }

    #[test]
    fn sample_stats_cover_mean_min_max_std_dev() {
        let samples = [
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
        ];
        let stats = SampleStats::from_samples(&samples);
        assert_eq!(stats.mean, Duration::from_millis(20));
        assert_eq!(stats.min, Duration::from_millis(10));
        assert_eq!(stats.max, Duration::from_millis(30));
        // Population std dev of {10, 20, 30} ms is sqrt(200/3) ≈ 8.165 ms.
        let sd = stats.std_dev.as_secs_f64();
        assert!((sd - 0.008_164_965).abs() < 1e-6, "{sd}");
    }

    #[test]
    fn sample_stats_of_nothing_are_zero() {
        let stats = SampleStats::from_samples(&[]);
        assert_eq!(stats.mean, Duration::ZERO);
        assert_eq!(stats.std_dev, Duration::ZERO);
    }

    #[test]
    fn constant_samples_have_zero_std_dev() {
        let stats = SampleStats::from_samples(&[Duration::from_micros(5); 4]);
        assert_eq!(stats.mean, Duration::from_micros(5));
        assert_eq!(stats.min, stats.max);
        assert!(stats.std_dev.as_secs_f64() < 1e-12);
    }
}
