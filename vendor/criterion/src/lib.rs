//! Offline stand-in for the parts of `criterion` 0.5 this workspace uses.
//!
//! Provides [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Instead of criterion's statistical machinery it runs each benchmark for
//! a fixed, small number of wall-clock samples and prints the mean — enough
//! to compare hot paths between commits and to keep `cargo bench` wired up
//! until the real crate can be pulled from a registry. Sample counts can be
//! tuned per group via [`BenchmarkGroup::sample_size`] or globally with the
//! `CRITERION_SAMPLES` environment variable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque barrier preventing the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver; collects and prints results.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: default_samples(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = default_samples();
        self.record(id.to_string(), samples, f);
        self
    }

    fn record<F>(&mut self, label: String, samples: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iterations: 0,
        };
        for _ in 0..samples {
            f(&mut bencher);
        }
        let mean = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.total / bencher.iterations
        };
        println!(
            "{label:<60} time: {mean:>12.2?} ({} iters)",
            bencher.iterations
        );
        self.results.push((label, mean));
    }

    /// Prints the closing summary. Called by [`criterion_main!`].
    pub fn final_summary(&self) {
        println!("benchmarked {} target(s)", self.results.len());
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark in this group takes. A
    /// `CRITERION_SAMPLES` env setting still wins, so CI can globally
    /// bound bench runtime.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = env_samples().unwrap_or(n);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size;
        self.criterion.record(label, samples, f);
        self
    }

    /// Benchmarks `f` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size;
        self.criterion.record(label, samples, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Measures the timed routine handed to it by a benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iterations: u32,
}

impl Bencher {
    /// Times one call of `routine` and accumulates the measurement.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.total += start.elapsed();
        self.iterations += 1;
    }
}

fn env_samples() -> Option<usize> {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
}

fn default_samples() -> usize {
    env_samples().unwrap_or(10)
}

/// Bundles benchmark functions into a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; accept and ignore.
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
        assert_eq!(c.results.len(), 2);
    }
}
