//! The deterministic case runner: config, seeding, regression replay.

use std::fs;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The RNG handed to strategies, re-seeded per test case from an explicit
/// 64-bit seed so every case is individually reproducible.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        Self(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (still overridable by
    /// `PROPTEST_CASES`, so CI can pin a global budget).
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases: env_u32("PROPTEST_CASES").unwrap_or(cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self::with_cases(64)
    }
}

/// Why a single test case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: redraw the case without counting it.
    Reject,
    /// `prop_assert!`-style failure with a message.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

fn env_u32(name: &str) -> Option<u32> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_u64_maybe_hex(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Runs one property over many seeded cases, replaying any seeds recorded
/// in `proptest-regressions/` first.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    /// Fully qualified test name, e.g. `qb_properties::binning_invariants_hold`.
    name: &'static str,
}

impl TestRunner {
    /// Creates a runner for the named property.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        Self { config, name }
    }

    /// Drives the property to completion, panicking on the first failing
    /// case after recording its seed for replay.
    pub fn run<F>(self, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base_seed = env_u64_maybe_hex("PROPTEST_SEED").unwrap_or(0x5eed);
        let name_hash = fnv1a(self.name.as_bytes());

        for seed in self.regression_seeds() {
            // Replayed regressions that now reject are treated as passed:
            // the input space may legitimately have moved under them.
            self.run_case(&mut f, seed, true);
        }

        let mut completed = 0u32;
        let mut attempt = 0u64;
        let reject_budget = self.config.cases as u64 * 64 + 256;
        while completed < self.config.cases {
            assert!(
                attempt < self.config.cases as u64 + reject_budget,
                "{}: too many rejected cases ({} attempts for {} target cases) — \
                 weaken the prop_assume! conditions",
                self.name,
                attempt,
                self.config.cases
            );
            let seed = splitmix(base_seed ^ name_hash ^ splitmix(attempt));
            attempt += 1;
            if self.run_case(&mut f, seed, false) {
                completed += 1;
            }
        }
    }

    /// Runs one case. Returns `true` if the case counted (i.e. was not
    /// rejected). Panics on failure.
    fn run_case<F>(&self, f: &mut F, seed: u64, replay: bool) -> bool
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_seed(seed);
        match catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
            Ok(Ok(())) => true,
            Ok(Err(TestCaseError::Reject)) => false,
            Ok(Err(TestCaseError::Fail(msg))) => {
                if !replay {
                    self.record_regression(seed);
                }
                panic!(
                    "{} failed for seed 0x{seed:016x}{}: {msg}",
                    self.name,
                    if replay { " (regression replay)" } else { "" },
                );
            }
            Err(payload) => {
                if !replay {
                    self.record_regression(seed);
                }
                eprintln!(
                    "{} panicked for seed 0x{seed:016x}{} (seed recorded)",
                    self.name,
                    if replay { " (regression replay)" } else { "" },
                );
                resume_unwind(payload);
            }
        }
    }

    /// The regression file for this property's top-level test module.
    fn regression_file(&self) -> Option<PathBuf> {
        let dir = if let Ok(dir) = std::env::var("PROPTEST_REGRESSIONS_DIR") {
            PathBuf::from(dir)
        } else {
            // Prefer an already-committed proptest-regressions/ directory in
            // the crate under test or any ancestor (the workspace root);
            // fall back to creating one next to the crate manifest.
            let manifest = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").ok()?);
            let mut found = None;
            for anc in manifest.ancestors() {
                if anc.join("proptest-regressions").is_dir() {
                    found = Some(anc.join("proptest-regressions"));
                    break;
                }
            }
            found.unwrap_or_else(|| manifest.join("proptest-regressions"))
        };
        let module = self.name.split("::").next().unwrap_or("unknown");
        Some(dir.join(format!("{module}.txt")))
    }

    /// Seeds previously recorded for this property, oldest first.
    fn regression_seeds(&self) -> Vec<u64> {
        let Some(path) = self.regression_file() else {
            return Vec::new();
        };
        let Ok(content) = fs::read_to_string(&path) else {
            return Vec::new();
        };
        let mut seeds = Vec::new();
        for line in content.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(name), Some(kv)) = (parts.next(), parts.next()) else {
                continue;
            };
            if name != self.name {
                continue;
            }
            if let Some(hex) = kv.strip_prefix("seed=0x") {
                if let Ok(seed) = u64::from_str_radix(hex, 16) {
                    seeds.push(seed);
                }
            }
        }
        seeds
    }

    /// Appends a failing seed to the regression file (idempotently).
    fn record_regression(&self, seed: u64) {
        let Some(path) = self.regression_file() else {
            return;
        };
        let line = format!("{} seed=0x{seed:016x}", self.name);
        let existing = fs::read_to_string(&path).unwrap_or_default();
        if existing.lines().any(|l| l.trim() == line) {
            return;
        }
        if let Some(parent) = path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        let header = if existing.is_empty() {
            "# Seeds of past property-test failures, replayed before new cases.\n\
             # Managed by vendor/proptest; safe to edit, one `<test> seed=0x..` per line.\n"
        } else {
            ""
        };
        let _ = fs::write(&path, format!("{existing}{header}{line}\n"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_reads_env_or_64() {
        // Cannot assert on env here (tests run in parallel); just check the
        // unoverridden constructor path.
        let c = ProptestConfig::with_cases(24);
        assert!(c.cases == 24 || std::env::var("PROPTEST_CASES").is_ok());
    }

    #[test]
    fn splitmix_and_fnv_are_stable() {
        assert_eq!(splitmix(0), 0xe220a8397b1dcdaf);
        assert_eq!(fnv1a(b"qb"), fnv1a(b"qb"));
        assert_ne!(fnv1a(b"qb"), fnv1a(b"bq"));
    }

    #[test]
    fn failing_case_records_a_replayable_seed() {
        let dir = std::env::temp_dir().join(format!("pds-proptest-stub-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        // Env is process-wide; the only other runner test tolerates this
        // (its regression file simply won't exist in the temp dir).
        std::env::set_var("PROPTEST_REGRESSIONS_DIR", &dir);
        let result = catch_unwind(AssertUnwindSafe(|| {
            TestRunner::new(ProptestConfig { cases: 3 }, "record_check::always_fails")
                .run(|_| Err(TestCaseError::fail("boom".into())));
        }));
        std::env::remove_var("PROPTEST_REGRESSIONS_DIR");
        assert!(result.is_err(), "failing property must panic");
        let recorded = fs::read_to_string(dir.join("record_check.txt")).unwrap();
        assert!(
            recorded.contains("record_check::always_fails seed=0x"),
            "seed not recorded: {recorded}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn runner_completes_and_counts_rejects() {
        let mut seen = 0u32;
        TestRunner::new(ProptestConfig { cases: 10 }, "test_runner::smoke").run(|rng| {
            use rand::Rng;
            let x: u64 = rng.gen();
            if x.is_multiple_of(4) {
                return Err(TestCaseError::Reject);
            }
            seen += 1;
            Ok(())
        });
        assert_eq!(seen, 10);
    }
}
