//! Fixed-size array strategies (`prop::array::uniformN`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `[S::Value; N]` by sampling the element strategy.
#[derive(Debug, Clone)]
pub struct UniformArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
    type Value = [S::Value; N];

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        core::array::from_fn(|_| self.element.sample(rng))
    }
}

macro_rules! uniform_fns {
    ($($fname:ident => $n:literal),* $(,)?) => {$(
        /// Strategy for arrays of the given length over one element strategy.
        pub fn $fname<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
            UniformArrayStrategy { element }
        }
    )*};
}
uniform_fns!(
    uniform4 => 4,
    uniform8 => 8,
    uniform16 => 16,
    uniform32 => 32,
);
