//! Value-generation strategies: ranges, tuples, and mapped collections.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type from a seeded RNG.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a pure sampling function, and reproducibility comes from replaying
/// the per-case seed.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String patterns as strategies (a tiny subset of proptest's regex
/// support): `.{m,n}` yields a printable-ASCII string whose length is
/// drawn from `[m, n]`; a pattern with no regex metacharacters yields
/// itself literally. Anything else is rejected loudly rather than
/// silently mis-generating.
impl Strategy for str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        if let Some(body) = self.strip_prefix(".{").and_then(|s| s.strip_suffix('}')) {
            if let Some((lo, hi)) = body.split_once(',') {
                if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) {
                    let len = rng.gen_range(lo..=hi);
                    return (0..len)
                        .map(|_| char::from(rng.gen_range(0x20u8..0x7f)))
                        .collect();
                }
            }
        }
        assert!(
            !self.contains(['.', '*', '+', '?', '[', '(', '{', '\\', '|']),
            "unsupported string pattern {self:?}: the offline proptest stand-in \
             only handles `.{{m,n}}` and literal strings"
        );
        self.to_owned()
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
