//! Offline, deterministic stand-in for the parts of `proptest` 1.x this
//! workspace uses.
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!`, integer/float range strategies, tuple strategies, and
//! [`collection::vec`] / [`collection::btree_set`]. Shrinking is not
//! implemented; instead every generated case derives from an explicit
//! 64-bit seed that is printed on failure, recorded under
//! `proptest-regressions/`, and replayed on the next run.
//!
//! Determinism knobs (all environment variables):
//!
//! * `PROPTEST_SEED` — base seed for case generation (default `0x5eed`).
//! * `PROPTEST_CASES` — overrides the number of cases per property.
//! * `PROPTEST_REGRESSIONS_DIR` — where regression seed files live
//!   (default: `<workspace>/proptest-regressions`, resolved from the
//!   manifest directory of the crate under test).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every proptest-based test starts with.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::TestRunner::new(
                    __config,
                    concat!(module_path!(), "::", stringify!($name)),
                )
                .run(|__rng: &mut $crate::test_runner::TestRng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Fails the current test case (with seed reporting) unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: {:?}",
            __l
        );
    }};
}

/// Rejects the current case (it is re-drawn, not counted) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
