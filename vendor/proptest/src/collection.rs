//! Collection strategies: `vec` and `btree_set` with a size range.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors whose length lies in `size` (half-open, like proptest).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(!size.is_empty(), "empty vec size range {size:?}");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates ordered sets whose size lies in `size` (half-open).
///
/// If the element domain is too small to reach the drawn size, the set is
/// returned at whatever size repeated sampling achieved — matching
/// proptest's behaviour of treating the size as a goal, not a guarantee,
/// once duplicates dominate.
pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    assert!(!size.is_empty(), "empty btree_set size range {size:?}");
    BTreeSetStrategy { element, size }
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let target = rng.gen_range(self.size.clone());
        let mut set = BTreeSet::new();
        // Bounded retries so tiny domains cannot loop forever.
        let mut budget = target.saturating_mul(16) + 64;
        while set.len() < target && budget > 0 {
            set.insert(self.element.sample(rng));
            budget -= 1;
        }
        set
    }
}
