//! The `any::<T>()` entry point: full-domain strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                <$t as rand::Standard>::sample(rng)
            }
        }
    )*};
}
impl_arbitrary_via_standard!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64
);

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for any value of type `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}
