//! Property-based integration tests: Query Binning must stay correct and
//! size-uniform for arbitrary value distributions, sensitivity ratios and
//! seeds.

use std::collections::BTreeSet;

use proptest::prelude::*;

use partitioned_data_security::prelude::*;
use pds_storage::AttributeStats;

/// Builds a relation with the given per-value tuple counts.
fn relation_from_counts(counts: &[(i64, u8)]) -> Relation {
    let schema = Schema::from_pairs(&[("K", DataType::Int), ("P", DataType::Int)]).unwrap();
    let mut r = Relation::new("T", schema);
    let mut payload = 0i64;
    for &(value, n) in counts {
        for _ in 0..n {
            payload += 1;
            r.insert(vec![Value::Int(value), Value::Int(payload)])
                .unwrap();
        }
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// QB answers exactly match a direct scan for every queried value,
    /// whatever the value counts, sensitivity ratio and seed.
    #[test]
    fn qb_answers_equal_direct_scan(
        counts in proptest::collection::vec((0i64..40, 1u8..5), 4..24),
        alpha in 0.05f64..0.95,
        seed in 0u64..1_000,
    ) {
        // Deduplicate values (the generator may repeat keys).
        let mut dedup: Vec<(i64, u8)> = Vec::new();
        for (v, n) in counts {
            if let Some(e) = dedup.iter_mut().find(|(x, _)| *x == v) {
                e.1 = e.1.saturating_add(n);
            } else {
                dedup.push((v, n));
            }
        }
        let relation = relation_from_counts(&dedup);
        let attr = relation.schema().attr_id("K").unwrap();
        let policy = SensitivityAssigner::new(seed)
            .by_value_fraction(&relation, attr, alpha)
            .unwrap();
        let parts = Partitioner::new(policy).split(&relation).unwrap();
        prop_assume!(parts.total_tuples() > 0);

        let binning = QueryBinning::build(
            &parts,
            "K",
            BinningConfig { seed, ..Default::default() },
        ).unwrap();
        binning.check_invariants().unwrap();

        let mut executor = QbExecutor::new(binning, NonDetScanEngine::new());
        let mut owner = DbOwner::new(seed);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        executor.outsource(&mut owner, &mut cloud, &parts).unwrap();

        for (value, _) in dedup.iter().take(8) {
            let v = Value::Int(*value);
            let expected: BTreeSet<u64> = relation
                .tuples()
                .iter()
                .filter(|t| t.value(attr) == &v)
                .map(|t| t.id.raw())
                .collect();
            let got: BTreeSet<u64> = executor
                .select(&mut owner, &mut cloud, &v)
                .unwrap()
                .iter()
                .map(|t| t.id.raw())
                .collect();
            prop_assert_eq!(got, expected);
        }

        // Condition 2 of the security definition: uniform sensitive output.
        let sizes: BTreeSet<usize> = cloud
            .adversarial_view()
            .episodes()
            .iter()
            .map(|ep| ep.sensitive_output_size())
            .collect();
        prop_assert!(sizes.len() <= 1, "non-uniform sensitive output sizes {:?}", sizes);
    }

    /// Bin creation never loses or duplicates a value, and the padded
    /// per-bin tuple totals are always equal.
    #[test]
    fn binning_invariants_hold(
        s_values in proptest::collection::btree_set(0i64..1_000, 1..60),
        ns_values in proptest::collection::btree_set(0i64..1_000, 1..60),
        heavy in proptest::collection::vec(1u64..200, 1..60),
    ) {
        let sensitive: Vec<Value> = s_values.iter().copied().map(Value::Int).collect();
        let nonsensitive: Vec<Value> = ns_values.iter().copied().map(Value::Int).collect();
        let s_stats = AttributeStats::from_counts(
            sensitive
                .iter()
                .enumerate()
                .map(|(i, v)| (v.clone(), heavy[i % heavy.len()]))
                .collect(),
        );
        let ns_stats = AttributeStats::from_values(nonsensitive.iter());
        let qb = QueryBinning::build_from_values(
            "K",
            sensitive.clone(),
            nonsensitive.clone(),
            s_stats.clone(),
            ns_stats,
            BinningConfig::default(),
        ).unwrap();
        qb.check_invariants().unwrap();

        // Every value appears in exactly one bin.
        let mut seen_s = BTreeSet::new();
        for i in 0..qb.sensitive_bin_count() {
            for v in qb.sensitive_bin(i) {
                prop_assert!(seen_s.insert(v.clone()), "sensitive value {} duplicated", v);
            }
        }
        prop_assert_eq!(seen_s.len(), sensitive.len());
        let mut seen_ns = BTreeSet::new();
        for j in 0..qb.nonsensitive_bin_count() {
            for v in qb.nonsensitive_bin(j) {
                prop_assert!(seen_ns.insert(v.clone()), "non-sensitive value {} duplicated", v);
            }
        }
        prop_assert_eq!(seen_ns.len(), nonsensitive.len());

        // Padded tuple totals are equal across sensitive bins.
        let totals: BTreeSet<u64> = (0..qb.sensitive_bin_count())
            .map(|i| {
                qb.sensitive_bin(i).iter().map(|v| s_stats.count(v)).sum::<u64>()
                    + qb.fake_tuples_per_bin()[i]
            })
            .collect();
        prop_assert!(totals.len() <= 1, "unequal padded bin totals {:?}", totals);

        // Every value retrieves a valid bin pair.
        for v in sensitive.iter().chain(nonsensitive.iter()) {
            let pair = qb.retrieve(v).unwrap();
            prop_assert!(pair.sensitive_bin < qb.sensitive_bin_count());
            prop_assert!(pair.nonsensitive_bin < qb.nonsensitive_bin_count());
        }
    }
}
