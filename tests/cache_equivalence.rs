//! Property-based integration tests for the owner-side hot-bin cache:
//! whatever the workload and the cache capacity (0 included), a cached
//! deployment must be **observationally identical** to the uncached one —
//! byte-identical answers per query — while partitioned data security keeps
//! holding on what the cloud actually observed, and the cache's accounting
//! must balance (`hits + misses == fetches`).
//!
//! Workloads are random multisets over the full Employee value domain: a
//! shuffled exhaustive pass (so every bin pair is touched and the security
//! check has a complete co-occurrence graph to verify) followed by a random
//! tail of repeats, which is where the cache earns its hits.

use proptest::prelude::*;

use partitioned_data_security::prelude::*;

mod common;
use common::{answer_bytes, employee_setup};

fn executor(
    parts: &pds_storage::PartitionedRelation,
    capacity: usize,
) -> (DbOwner, CloudServer, QbExecutor<NonDetScanEngine>) {
    let binning = QueryBinning::build(parts, "EId", BinningConfig::default()).unwrap();
    let mut exec = QbExecutor::new(binning, NonDetScanEngine::new()).with_cache_capacity(capacity);
    let mut owner = DbOwner::new(5);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    exec.outsource(&mut owner, &mut cloud, parts).unwrap();
    (owner, cloud, exec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every cache capacity (including 0 = disabled) and random query
    /// tail, the cached deployment answers byte-identically to the uncached
    /// one, the cloud's view still satisfies partitioned data security, and
    /// the cache accounting balances.
    #[test]
    fn cached_answers_equal_uncached_and_stay_secure(
        capacity in 0usize..=24,
        shuffle_seed in 0u64..1_000,
        tail in proptest::collection::vec(0usize..64, 0..40),
    ) {
        let (parts, values) = employee_setup();

        // Shuffled exhaustive pass + random repeat tail.
        let mut workload = values.clone();
        let mut rng = pds_common::rng::seeded_rng(shuffle_seed);
        pds_common::rng::shuffle(&mut workload, &mut rng);
        for pick in &tail {
            workload.push(values[pick % values.len()].clone());
        }

        let (mut base_owner, mut base_cloud, mut uncached) = executor(&parts, 0);
        let (mut owner, mut cloud, mut cached) = executor(&parts, capacity);

        for value in &workload {
            let expect = answer_bytes(
                &uncached.select(&mut base_owner, &mut base_cloud, value).unwrap(),
            );
            let got = answer_bytes(&cached.select(&mut owner, &mut cloud, value).unwrap());
            prop_assert!(got == expect, "answers diverge for {value} at capacity {capacity}");
            let stats = cached.last_stats();
            prop_assert_eq!(stats.cache_hits + stats.cache_misses, 1);
        }

        // The cloud's view of the cached run is secure (hits only removed
        // episodes; every bin pair was still observed by the exhaustive
        // prefix, so the co-occurrence graph stays complete).
        let report = check_partitioned_security(cloud.adversarial_view());
        prop_assert!(report.is_secure(), "capacity {}: {:?}", capacity, report);

        // Accounting: one pair fetch per query, hits + misses == fetches.
        let stats = cached.cache_stats();
        prop_assert_eq!(stats.fetches(), workload.len() as u64);
        prop_assert_eq!(stats.hits + stats.misses, stats.fetches());
        prop_assert_eq!(owner.metrics().bin_cache_hits, stats.hits);
        prop_assert_eq!(owner.metrics().bin_cache_misses, stats.misses);
        // Capacity 0 never hits; the cloud then saw exactly one episode per
        // query, and in general one episode per miss.
        if capacity == 0 {
            prop_assert_eq!(stats.hits, 0);
        }
        prop_assert_eq!(cloud.adversarial_view().len() as u64, stats.misses);
        // The cache never outgrows its capacity.
        prop_assert!(cached.cache().len() <= capacity);
    }
}
