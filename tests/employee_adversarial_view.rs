//! Integration test for experiment E1 (Tables II and III of the paper):
//! the adversarial views of naive partitioned execution versus Query
//! Binning on the Employee example.

use partitioned_data_security::prelude::*;

fn employee_parts() -> pds_storage::PartitionedRelation {
    let relation = employee_relation();
    let policy = employee_sensitivity_policy(&relation).unwrap();
    Partitioner::new(policy).split(&relation).unwrap()
}

/// Table II: without QB, the three queries of Example 2 produce episodes
/// whose output sizes and plaintext/ciphertext pairing identify which
/// employees are sensitive-only, non-sensitive-only, or both.
#[test]
fn naive_execution_reproduces_table2_leakage() {
    let parts = employee_parts();
    let mut naive = NaivePartitionedExecutor::new("EId", NonDetScanEngine::new());
    let mut owner = DbOwner::new(1);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    naive.outsource(&mut owner, &mut cloud, &parts).unwrap();

    for eid in ["E259", "E101", "E199"] {
        naive.select(&mut owner, &mut cloud, &eid.into()).unwrap();
    }
    let eps = cloud.adversarial_view().episodes();
    assert_eq!(eps.len(), 3);
    // E259: one encrypted tuple AND one clear-text tuple → "works in both".
    assert_eq!(eps[0].sensitive_output_size(), 1);
    assert_eq!(eps[0].nonsensitive_output_size(), 1);
    // E101: only an encrypted tuple → "works only in a sensitive department".
    assert_eq!(eps[1].sensitive_output_size(), 1);
    assert_eq!(eps[1].nonsensitive_output_size(), 0);
    // E199: only a clear-text tuple → "works only in a non-sensitive department".
    assert_eq!(eps[2].sensitive_output_size(), 0);
    assert_eq!(eps[2].nonsensitive_output_size(), 1);

    // The formal definition is violated.
    let report = check_partitioned_security(cloud.adversarial_view());
    assert!(!report.is_secure());
}

/// Table III: with QB the same three queries return indistinguishable
/// episodes — every episode carries one whole sensitive bin and one whole
/// non-sensitive bin, and the query value cannot be located in either.
#[test]
fn qb_execution_reproduces_table3_shape() {
    let parts = employee_parts();
    let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
    let shape = *binning.shape();
    let mut qb = QbExecutor::new(binning, NonDetScanEngine::new());
    let mut owner = DbOwner::new(1);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    qb.outsource(&mut owner, &mut cloud, &parts).unwrap();

    let answers: Vec<usize> = ["E259", "E101", "E199"]
        .iter()
        .map(|eid| {
            qb.select(&mut owner, &mut cloud, &(*eid).into())
                .unwrap()
                .len()
        })
        .collect();
    // Query answers themselves are still exact.
    assert_eq!(answers, vec![2, 1, 1]);

    let eps = cloud.adversarial_view().episodes();
    assert_eq!(eps.len(), 3);
    for ep in eps {
        // Every episode requests whole bins...
        assert_eq!(ep.plaintext_request.len(), shape.nonsensitive_bin_capacity);
        assert_eq!(ep.encrypted_request_size, 0); // nondet-scan sends no tokens
                                                  // ...and returns the same number of encrypted tuples each time.
        assert_eq!(ep.sensitive_output_size(), eps[0].sensitive_output_size());
    }
}

/// After querying every value once, the full partitioned-data-security
/// definition (both conditions of §III) holds for QB and fails for the
/// naive execution.
#[test]
fn exhaustive_workload_security_verdicts() {
    let parts = employee_parts();
    let attr = parts.sensitive.schema().attr_id("EId").unwrap();
    let mut all_values = parts.sensitive.distinct_values(attr);
    for v in parts.nonsensitive.distinct_values(attr) {
        if !all_values.contains(&v) {
            all_values.push(v);
        }
    }

    // QB.
    let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
    let mut qb = QbExecutor::new(binning, NonDetScanEngine::new());
    let mut owner = DbOwner::new(2);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    qb.outsource(&mut owner, &mut cloud, &parts).unwrap();
    for v in &all_values {
        qb.select(&mut owner, &mut cloud, v).unwrap();
    }
    assert!(check_partitioned_security(cloud.adversarial_view()).is_secure());

    // Naive.
    let mut naive = NaivePartitionedExecutor::new("EId", NonDetScanEngine::new());
    let mut owner = DbOwner::new(2);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    naive.outsource(&mut owner, &mut cloud, &parts).unwrap();
    for v in &all_values {
        naive.select(&mut owner, &mut cloud, v).unwrap();
    }
    assert!(!check_partitioned_security(cloud.adversarial_view()).is_secure());
}
