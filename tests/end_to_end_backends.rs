//! End-to-end correctness of Query Binning over every secure back-end in
//! the workspace: the answers returned through QB must equal the answers a
//! direct scan of the original relation would give, for every back-end and
//! for a mixed sensitive/non-sensitive workload.

use std::collections::BTreeSet;

use partitioned_data_security::prelude::*;

fn test_relation() -> Relation {
    TpchGenerator::new(TpchConfig {
        lineitem_tuples: 600,
        distinct_partkeys: 60,
        distinct_suppkeys: 12,
        skew: 0.6,
        seed: 77,
    })
    .lineitem()
}

fn ground_truth(relation: &Relation, value: &Value) -> BTreeSet<u64> {
    let attr = relation.schema().attr_id("L_PARTKEY").unwrap();
    relation
        .tuples()
        .iter()
        .filter(|t| t.value(attr) == value)
        .map(|t| t.id.raw())
        .collect()
}

fn check_backend<E: SecureSelectionEngine>(engine: E, seed: u64) {
    let relation = test_relation();
    let attr = relation.schema().attr_id("L_PARTKEY").unwrap();
    let policy = SensitivityAssigner::new(seed)
        .by_value_fraction(&relation, attr, 0.35)
        .unwrap();
    let parts = Partitioner::new(policy).split(&relation).unwrap();
    let binning = QueryBinning::build(&parts, "L_PARTKEY", BinningConfig::default()).unwrap();
    let mut executor = QbExecutor::new(binning, engine);
    let mut owner = DbOwner::new(seed);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    executor.outsource(&mut owner, &mut cloud, &parts).unwrap();

    // Query a mix of values: some sensitive, some non-sensitive, one absent.
    let mut values = relation.distinct_values(attr);
    values.truncate(12);
    values.push(Value::Int(9_999_999));
    for value in &values {
        let expected = ground_truth(&relation, value);
        let got: BTreeSet<u64> = executor
            .select(&mut owner, &mut cloud, value)
            .unwrap()
            .iter()
            .map(|t| t.id.raw())
            .collect();
        assert_eq!(
            got, expected,
            "answer mismatch for {value} under {:?}",
            executor
        );
    }
}

#[test]
fn qb_over_nondet_scan_is_exact() {
    check_backend(NonDetScanEngine::new(), 1);
}

#[test]
fn qb_over_deterministic_index_is_exact() {
    check_backend(DeterministicIndexEngine::new(), 2);
}

#[test]
fn qb_over_arx_index_is_exact() {
    check_backend(ArxEngine::new(), 3);
}

#[test]
fn qb_over_secret_sharing_is_exact() {
    check_backend(SecretSharingEngine::default_deployment(), 4);
}

#[test]
fn qb_over_dpf_is_exact() {
    check_backend(DpfEngine::new(99), 5);
}

#[test]
fn qb_over_opaque_simulator_is_exact() {
    check_backend(
        partitioned_data_security::systems::oblivious::opaque_sim(),
        6,
    );
}

#[test]
fn qb_over_jana_simulator_is_exact() {
    check_backend(JanaSimEngine::new(), 7);
}

/// Whatever the back-end, the adversary never observes varying sensitive
/// output sizes under QB (condition 2 of the security definition).
#[test]
fn all_backends_return_uniform_output_sizes() {
    for seed in 1..=3u64 {
        let relation = test_relation();
        let attr = relation.schema().attr_id("L_PARTKEY").unwrap();
        let policy = SensitivityAssigner::new(seed)
            .by_value_fraction(&relation, attr, 0.4)
            .unwrap();
        let parts = Partitioner::new(policy).split(&relation).unwrap();
        let binning = QueryBinning::build(&parts, "L_PARTKEY", BinningConfig::default()).unwrap();
        let mut executor = QbExecutor::new(binning, ArxEngine::new());
        let mut owner = DbOwner::new(seed);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        executor.outsource(&mut owner, &mut cloud, &parts).unwrap();
        for value in relation.distinct_values(attr).into_iter().take(20) {
            executor.select(&mut owner, &mut cloud, &value).unwrap();
        }
        let sizes: BTreeSet<usize> = cloud
            .adversarial_view()
            .episodes()
            .iter()
            .map(|ep| ep.sensitive_output_size())
            .collect();
        assert!(
            sizes.len() <= 1,
            "sensitive output sizes must be uniform, got {sizes:?}"
        );
    }
}
