//! Integration test for experiment E7 (§VI): the size, frequency-count and
//! workload-skew attacks succeed against weak configurations and are
//! defeated once Query Binning is layered on top.

use std::collections::HashMap;

use partitioned_data_security::adversary::size_attack::SizeAttackGroundTruth;
use partitioned_data_security::adversary::{FrequencyAttack, SizeAttack, WorkloadSkewAttack};
use partitioned_data_security::prelude::*;

/// A skewed relation whose salary column is a classic inference target.
fn payroll() -> Relation {
    let schema =
        Schema::from_pairs(&[("Salary", DataType::Int), ("Name", DataType::Text)]).unwrap();
    let mut r = Relation::new("Payroll", schema);
    let mut counts = vec![
        (40_000i64, 20),
        (55_000i64, 10),
        (70_000i64, 5),
        (90_000i64, 2),
        (250_000i64, 1),
    ];
    let mut i = 0;
    for (salary, n) in counts.drain(..) {
        for _ in 0..n {
            r.insert(vec![Value::Int(salary), Value::from(format!("p{i}"))])
                .unwrap();
            i += 1;
        }
    }
    r
}

#[test]
fn frequency_attack_breaks_deterministic_but_not_arx_tokens() {
    let relation = payroll();
    let attr = relation.schema().attr_id("Salary").unwrap();
    let auxiliary: HashMap<Value, u64> = relation
        .attribute_stats(attr)
        .iter()
        .map(|(v, c)| (v.clone(), c))
        .collect();

    // Deterministic tags: full recovery.
    let mut owner = DbOwner::new(1);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    let mut det = DeterministicIndexEngine::new();
    det.outsource(&mut owner, &mut cloud, &relation, attr)
        .unwrap();
    let truth: HashMap<Vec<u8>, Value> = relation
        .tuples()
        .iter()
        .map(|t| (owner.det_tag(t.value(attr)), t.value(attr).clone()))
        .collect();
    let det_outcome = FrequencyAttack::run(cloud.encrypted_store(), &auxiliary, &truth);
    assert_eq!(det_outcome.recovery_rate, 1.0);

    // Arx per-occurrence tokens: every tag unique, frequency matching fails.
    let mut owner = DbOwner::new(1);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    let mut arx = ArxEngine::new();
    arx.outsource(&mut owner, &mut cloud, &relation, attr)
        .unwrap();
    let mut occurrence: HashMap<Value, u64> = HashMap::new();
    let arx_truth: HashMap<Vec<u8>, Value> = relation
        .tuples()
        .iter()
        .map(|t| {
            let v = t.value(attr).clone();
            let occ = occurrence.entry(v.clone()).or_insert(0);
            let tag = owner.counter_tag(&v, *occ);
            *occ += 1;
            (tag, v)
        })
        .collect();
    let arx_outcome = FrequencyAttack::run(cloud.encrypted_store(), &auxiliary, &arx_truth);
    assert!(arx_outcome.recovery_rate < det_outcome.recovery_rate);
}

fn run_workload_and_attack(use_qb: bool) -> (f64, f64, bool) {
    let relation = payroll();
    let attr = relation.schema().attr_id("Salary").unwrap();
    // Salaries at or below 55k are sensitive.
    let policy =
        SensitivityPolicy::rows(Predicate::range(relation.schema(), "Salary", 0, 56_000).unwrap());
    let parts = Partitioner::new(policy).split(&relation).unwrap();
    let values = relation.distinct_values(attr);

    let mut owner = DbOwner::new(9);
    let mut cloud = CloudServer::new(NetworkModel::paper_wan());
    let mut issued = Vec::new();

    if use_qb {
        let binning = QueryBinning::build(&parts, "Salary", BinningConfig::default()).unwrap();
        let mut qb = QbExecutor::new(binning, ArxEngine::new());
        qb.outsource(&mut owner, &mut cloud, &parts).unwrap();
        for v in &values {
            for _ in 0..2 {
                qb.select(&mut owner, &mut cloud, v).unwrap();
                issued.push(v.clone());
            }
        }
    } else {
        let mut naive = NaivePartitionedExecutor::new("Salary", ArxEngine::new());
        naive.outsource(&mut owner, &mut cloud, &parts).unwrap();
        for v in &values {
            for _ in 0..2 {
                naive.select(&mut owner, &mut cloud, v).unwrap();
                issued.push(v.clone());
            }
        }
    }

    let s_attr = parts.sensitive.schema().attr_id("Salary").unwrap();
    let truth = SizeAttackGroundTruth {
        queried_values: issued.clone(),
        sensitive_counts: parts
            .sensitive
            .attribute_stats(s_attr)
            .iter()
            .map(|(v, c)| (v.clone(), c))
            .collect(),
    };
    let size = SizeAttack::run(cloud.adversarial_view(), &truth);
    let skew = WorkloadSkewAttack::run(cloud.adversarial_view(), &values, &issued);
    let report = check_partitioned_security(cloud.adversarial_view());
    (size.exact_rate, skew.mean_anonymity_set, report.is_secure())
}

#[test]
fn size_and_skew_attacks_succeed_without_qb() {
    let (size_exact, anonymity, secure) = run_workload_and_attack(false);
    assert!(
        size_exact > 0.9,
        "size attack reads counts directly: {size_exact}"
    );
    assert!(
        anonymity <= 1.0 + 1e-9,
        "each fingerprint identifies one value"
    );
    assert!(!secure);
}

#[test]
fn qb_defeats_size_and_skew_attacks() {
    let (size_exact, anonymity, secure) = run_workload_and_attack(true);
    let (naive_exact, naive_anonymity, _) = run_workload_and_attack(false);
    assert!(
        size_exact < naive_exact,
        "QB must reduce size-attack accuracy"
    );
    assert!(
        anonymity >= naive_anonymity,
        "QB fingerprints hide at least as many values"
    );
    assert!(secure, "QB execution satisfies partitioned data security");
}
