//! Property-based integration tests for the plan→session episode pipeline:
//! whatever the back-end, the shard count and the placement seed,
//! plan-driven execution on the live composed path must be
//! **observationally identical** to the fine-grained multi-round path
//! (byte-identical answers for every value of the exhaustive Employee
//! workload) and partitioned data security must hold on every shard's own
//! view *and* on the composed coalition view in **both** modes.
//!
//! The engines are driven as `Box<dyn SecureSelectionEngine>` — the same
//! trait-object form heterogeneous deployments use — so this suite also
//! proves the boxed path end to end for all six back-ends.
//!
//! The cost-based optimizer rides the same harness: identical seed and
//! cost inputs must compile to a byte-identical [`QueryPlan`], and the
//! heterogeneous deployment the optimizer picks must return byte-identical
//! answers to every forced-homogeneous baseline.

use proptest::prelude::*;

use partitioned_data_security::prelude::*;
use partitioned_data_security::systems::oblivious;

mod common;
use common::{answer_bytes, employee_setup};

/// The six back-ends by index, as boxed trait objects.
fn backend(i: usize) -> Box<dyn SecureSelectionEngine> {
    match i {
        0 => Box::new(NonDetScanEngine::new()),
        1 => Box::new(DeterministicIndexEngine::new()),
        2 => Box::new(ArxEngine::new()),
        3 => Box::new(SecretSharingEngine::default_deployment()),
        4 => Box::new(DpfEngine::new(99)),
        _ => Box::new(oblivious::opaque_sim()),
    }
}

const BACKENDS: usize = 6;

/// The engine an optimizer decision names, as a boxed trait object.
fn engine_named(name: &str) -> Box<dyn SecureSelectionEngine> {
    match name {
        "nondet-scan" => Box::new(NonDetScanEngine::new()),
        "det-index" => Box::new(DeterministicIndexEngine::new()),
        "arx-index" => Box::new(ArxEngine::new()),
        "secret-sharing" => Box::new(SecretSharingEngine::default_deployment()),
        "dpf" => Box::new(DpfEngine::new(99)),
        "opaque-sim" => Box::new(oblivious::opaque_sim()),
        other => panic!("planner chose an unknown engine {other:?}"),
    }
}

/// A calibrated cost model built from **synthetic, seed-derived**
/// observations — no wall-clock is ever read, so identical `(shards, seed)`
/// inputs always reproduce the identical model.
fn synthetic_model(shards: usize, seed: u64) -> (CostModel, Vec<EngineCandidate>) {
    let candidates: Vec<EngineCandidate> = (0..BACKENDS)
        .map(|i| EngineCandidate::of(backend(i).as_ref()))
        .collect();
    let names: Vec<&str> = candidates.iter().map(|c| c.name.as_str()).collect();
    let mut model = CostModel::seeded(&names);
    model.set_round_trip_cost(0.010);
    for (i, name) in names.iter().enumerate() {
        for shard in 0..shards {
            let work = Metrics {
                encrypted_tuples_scanned: 40 + 3 * i as u64,
                plaintext_tuples_scanned: 60,
                plaintext_index_lookups: 1,
                owner_decryptions: 40 + 3 * i as u64,
                round_trips: 1 + i as u64 % 2,
                ..Default::default()
            };
            let modelled = model.modelled(name, &work).expect("engine is seeded");
            // A deterministic pseudo-measurement in [0.5, 1.9] × modelled.
            let jitter = ((seed ^ (i as u64 * 31 + shard as u64 * 7)) % 15) as f64 / 10.0;
            model.observe(name, shard, &work, modelled * (0.5 + jitter));
        }
    }
    (model, candidates)
}

/// Deterministic per-shard linkage advantages with some shards pushed over
/// the 0.5 threshold, so both branches of the security constraint (free
/// choice vs oblivious-only) are exercised.
fn synthetic_advantages(shards: usize, seed: u64) -> Vec<f64> {
    (0..shards)
        .map(|s| {
            if (s as u64 + seed) % 4 == 0 {
                0.9
            } else {
                0.05
            }
        })
        .collect()
}

/// Deploys `engines` (one per shard) over the Employee parts with the
/// given planner configuration, runs the whole workload as one batch and
/// returns the per-query answer bytes.
fn run_deployment(
    parts: &pds_storage::PartitionedRelation,
    values: &[Value],
    engines: Vec<Box<dyn SecureSelectionEngine>>,
    config: PlannerConfig,
    placement_seed: u64,
) -> Vec<Vec<Vec<u8>>> {
    let shards = engines.len();
    let binning = QueryBinning::build(parts, "EId", BinningConfig::default()).unwrap();
    let mut executor = QbExecutor::new(binning, engines[0].fork());
    let mut owner = DbOwner::new(5);
    let mut router = ShardRouter::new(shards, NetworkModel::paper_wan(), placement_seed).unwrap();
    executor
        .outsource_with_engines(&mut owner, &mut router, parts, engines)
        .unwrap();
    executor.set_planner(config).unwrap();
    let run = executor
        .run_workload_transported(&mut owner, &mut router, values, &BinTransport::Sequential)
        .unwrap();
    run.answers.iter().map(|ts| answer_bytes(ts)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For every back-end, shard count and placement seed, the composed
    /// plan mode returns byte-identical answers to the forced fine-grained
    /// mode on an identical deployment, never uses more rounds, and the
    /// security definition holds per shard and composed in both modes.
    #[test]
    fn composed_plans_match_fine_grained_across_backends(
        shards in 1usize..=8,
        placement_seed in 0u64..1_000,
    ) {
        let (parts, values) = employee_setup();
        for backend_idx in 0..BACKENDS {
            let mut answers: Vec<Vec<Vec<Vec<u8>>>> = Vec::new();
            let mut rounds: Vec<u64> = Vec::new();
            let mut bin_pair_frames: Vec<u64> = Vec::new();
            let composes = backend(backend_idx).composes_episodes();

            for mode in [PlanMode::Composed, PlanMode::FineGrained] {
                let binning =
                    QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
                let mut executor =
                    QbExecutor::new(binning, backend(backend_idx)).with_plan_mode(mode);
                let mut owner = DbOwner::new(5);
                let mut router = ShardRouter::new(
                    shards,
                    NetworkModel::paper_wan(),
                    placement_seed,
                ).unwrap();
                executor.outsource(&mut owner, &mut router, &parts).unwrap();
                let outsourcing = router.metrics();

                let mut mode_answers = Vec::with_capacity(values.len());
                let mut mode_rounds = 0u64;
                for value in &values {
                    let ts = executor.select(&mut owner, &mut router, value).unwrap();
                    mode_answers.push(answer_bytes(&ts));
                    mode_rounds += executor.last_stats().rounds;
                }
                let delta = router.metrics().delta_since(&outsourcing);
                // Per-episode rounds must add up to the metrics' counter.
                prop_assert_eq!(delta.round_trips, mode_rounds);
                answers.push(mode_answers);
                rounds.push(mode_rounds);
                bin_pair_frames.push(
                    delta.frames_of_type(partitioned_data_security::cloud::msg_tag::BIN_PAIR_REQUEST),
                );

                // Security holds in this mode, per shard and composed.
                let report =
                    check_sharded_partitioned_security(&router.adversarial_views());
                prop_assert!(
                    report.is_secure(),
                    "backend={} mode={:?} shards={} seed={} report={:?}",
                    backend_idx, mode, shards, placement_seed, report
                );
            }

            // Byte-identical answers across the two paths.
            prop_assert!(
                answers[0] == answers[1],
                "answers diverged for backend {} ({} shards, seed {})",
                backend_idx, shards, placement_seed
            );
            // The fine-grained run never touches the composed message; a
            // composed-capable engine really moves one BinPairRequest per
            // episode and strictly drops rounds.
            prop_assert_eq!(bin_pair_frames[1], 0u64);
            if composes {
                prop_assert_eq!(bin_pair_frames[0] as usize, values.len());
                prop_assert!(
                    rounds[0] < rounds[1],
                    "composed must use strictly fewer rounds for backend {} ({} vs {})",
                    backend_idx, rounds[0], rounds[1]
                );
            } else {
                prop_assert_eq!(bin_pair_frames[0], 0u64);
                prop_assert_eq!(rounds[0], rounds[1]);
            }
        }
    }

    /// Identical seed and cost inputs produce a **byte-identical** optimizer
    /// outcome: the same `ShardPlan` vector from `choose_engines`, and the
    /// same compiled `QueryPlan` (compared via `format!("{plan:?}")`) from
    /// two independently-built but identically-configured deployments on
    /// the same (rotated) workload.
    #[test]
    fn planner_compilation_is_deterministic(
        shards in 1usize..=8,
        placement_seed in 0u64..1_000,
        rotation in 0usize..32,
    ) {
        let (parts, values) = employee_setup();
        let mut workload = values.clone();
        let len = workload.len();
        workload.rotate_left(rotation % len);

        let (model, candidates) = synthetic_model(shards, placement_seed);
        let advantage = synthetic_advantages(shards, placement_seed);
        let chosen = choose_engines(&model, &candidates, &advantage, 0.5).unwrap();
        let chosen_again = choose_engines(&model, &candidates, &advantage, 0.5).unwrap();
        prop_assert_eq!(format!("{chosen:?}"), format!("{chosen_again:?}"));
        for plan in &chosen {
            if plan.oblivious_required {
                // opaque-sim is the only access-pattern-hiding candidate.
                prop_assert_eq!(plan.engine.as_str(), "opaque-sim");
            }
        }

        let residual =
            Predicate::range(employee_relation().schema(), "Office", 1i64, 3i64).unwrap();
        let mut compiled = Vec::new();
        for _ in 0..2 {
            let binning =
                QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
            let engines: Vec<Box<dyn SecureSelectionEngine>> =
                chosen.iter().map(|p| engine_named(&p.engine)).collect();
            let mut executor = QbExecutor::new(binning, engine_named(&chosen[0].engine));
            let mut owner = DbOwner::new(5);
            let mut router =
                ShardRouter::new(shards, NetworkModel::paper_wan(), placement_seed).unwrap();
            executor
                .outsource_with_engines(&mut owner, &mut router, &parts, engines)
                .unwrap();
            executor.set_planner(PlannerConfig {
                residual: Some(residual.clone()),
                ..PlannerConfig::default()
            }).unwrap();
            let plan = executor.compile_workload(&mut owner, &router, &workload);
            compiled.push(format!("{plan:?}"));
        }
        prop_assert!(
            compiled[0] == compiled[1],
            "plan compilation diverged ({} shards, seed {}, rotation {})",
            shards, placement_seed, rotation
        );
    }

    /// Across 1–8 shards, the heterogeneous deployment the optimizer picks
    /// (residual pushed down the wire) returns byte-identical answers to
    /// every forced-homogeneous baseline evaluating the same residual
    /// owner-side only.
    #[test]
    fn planner_choice_matches_every_forced_homogeneous_baseline(
        shards in 1usize..=8,
        placement_seed in 0u64..1_000,
    ) {
        let (parts, values) = employee_setup();
        let residual =
            Predicate::range(employee_relation().schema(), "Office", 1i64, 3i64).unwrap();

        let (model, candidates) = synthetic_model(shards, placement_seed);
        let advantage = synthetic_advantages(shards, placement_seed);
        let chosen = choose_engines(&model, &candidates, &advantage, 0.5).unwrap();

        let planner_answers = run_deployment(
            &parts,
            &values,
            chosen.iter().map(|p| engine_named(&p.engine)).collect(),
            PlannerConfig {
                residual: Some(residual.clone()),
                pushdown: true,
                ..PlannerConfig::default()
            },
            placement_seed,
        );
        for backend_idx in 0..BACKENDS {
            let baseline = run_deployment(
                &parts,
                &values,
                (0..shards).map(|_| backend(backend_idx)).collect(),
                PlannerConfig {
                    residual: Some(residual.clone()),
                    pushdown: false,
                    ..PlannerConfig::default()
                },
                placement_seed,
            );
            prop_assert!(
                planner_answers == baseline,
                "planner answers diverged from forced backend {} ({} shards, seed {})",
                backend_idx, shards, placement_seed
            );
        }
    }
}
