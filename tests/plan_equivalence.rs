//! Property-based integration tests for the plan→session episode pipeline:
//! whatever the back-end, the shard count and the placement seed,
//! plan-driven execution on the live composed path must be
//! **observationally identical** to the fine-grained multi-round path
//! (byte-identical answers for every value of the exhaustive Employee
//! workload) and partitioned data security must hold on every shard's own
//! view *and* on the composed coalition view in **both** modes.
//!
//! The engines are driven as `Box<dyn SecureSelectionEngine>` — the same
//! trait-object form heterogeneous deployments use — so this suite also
//! proves the boxed path end to end for all six back-ends.

use proptest::prelude::*;

use partitioned_data_security::prelude::*;
use partitioned_data_security::systems::oblivious;

mod common;
use common::{answer_bytes, employee_setup};

/// The six back-ends by index, as boxed trait objects.
fn backend(i: usize) -> Box<dyn SecureSelectionEngine> {
    match i {
        0 => Box::new(NonDetScanEngine::new()),
        1 => Box::new(DeterministicIndexEngine::new()),
        2 => Box::new(ArxEngine::new()),
        3 => Box::new(SecretSharingEngine::default_deployment()),
        4 => Box::new(DpfEngine::new(99)),
        _ => Box::new(oblivious::opaque_sim()),
    }
}

const BACKENDS: usize = 6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For every back-end, shard count and placement seed, the composed
    /// plan mode returns byte-identical answers to the forced fine-grained
    /// mode on an identical deployment, never uses more rounds, and the
    /// security definition holds per shard and composed in both modes.
    #[test]
    fn composed_plans_match_fine_grained_across_backends(
        shards in 1usize..=8,
        placement_seed in 0u64..1_000,
    ) {
        let (parts, values) = employee_setup();
        for backend_idx in 0..BACKENDS {
            let mut answers: Vec<Vec<Vec<Vec<u8>>>> = Vec::new();
            let mut rounds: Vec<u64> = Vec::new();
            let mut bin_pair_frames: Vec<u64> = Vec::new();
            let composes = backend(backend_idx).composes_episodes();

            for mode in [PlanMode::Composed, PlanMode::FineGrained] {
                let binning =
                    QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
                let mut executor =
                    QbExecutor::new(binning, backend(backend_idx)).with_plan_mode(mode);
                let mut owner = DbOwner::new(5);
                let mut router = ShardRouter::new(
                    shards,
                    NetworkModel::paper_wan(),
                    placement_seed,
                ).unwrap();
                executor.outsource(&mut owner, &mut router, &parts).unwrap();
                let outsourcing = router.metrics();

                let mut mode_answers = Vec::with_capacity(values.len());
                let mut mode_rounds = 0u64;
                for value in &values {
                    let ts = executor.select(&mut owner, &mut router, value).unwrap();
                    mode_answers.push(answer_bytes(&ts));
                    mode_rounds += executor.last_stats().rounds;
                }
                let delta = router.metrics().delta_since(&outsourcing);
                // Per-episode rounds must add up to the metrics' counter.
                prop_assert_eq!(delta.round_trips, mode_rounds);
                answers.push(mode_answers);
                rounds.push(mode_rounds);
                bin_pair_frames.push(
                    delta.frames_of_type(partitioned_data_security::cloud::msg_tag::BIN_PAIR_REQUEST),
                );

                // Security holds in this mode, per shard and composed.
                let report =
                    check_sharded_partitioned_security(&router.adversarial_views());
                prop_assert!(
                    report.is_secure(),
                    "backend={} mode={:?} shards={} seed={} report={:?}",
                    backend_idx, mode, shards, placement_seed, report
                );
            }

            // Byte-identical answers across the two paths.
            prop_assert!(
                answers[0] == answers[1],
                "answers diverged for backend {} ({} shards, seed {})",
                backend_idx, shards, placement_seed
            );
            // The fine-grained run never touches the composed message; a
            // composed-capable engine really moves one BinPairRequest per
            // episode and strictly drops rounds.
            prop_assert_eq!(bin_pair_frames[1], 0u64);
            if composes {
                prop_assert_eq!(bin_pair_frames[0] as usize, values.len());
                prop_assert!(
                    rounds[0] < rounds[1],
                    "composed must use strictly fewer rounds for backend {} ({} vs {})",
                    backend_idx, rounds[0], rounds[1]
                );
            } else {
                prop_assert_eq!(bin_pair_frames[0], 0u64);
                prop_assert_eq!(rounds[0], rounds[1]);
            }
        }
    }
}
