//! Integration test for experiment E2 (Example 3, Example 4, Figure 4):
//! the surviving-matches analysis over the 10-sensitive / 10-non-sensitive
//! value example, with and without following Algorithm 2.

use partitioned_data_security::adversary::SurvivingMatches;
use partitioned_data_security::prelude::*;
use pds_storage::AttributeStats;

/// Builds the Example-3 binning: sensitive values s1..s10, non-sensitive
/// values {s1, s2, s3, s5, s6} (associated) ∪ {ns11..ns15}.
fn example3_binning() -> QueryBinning {
    let sensitive: Vec<Value> = (1..=10).map(|i| Value::from(format!("s{i}"))).collect();
    let nonsensitive: Vec<Value> = [
        "s1", "s2", "s3", "s5", "s6", "ns11", "ns12", "ns13", "ns14", "ns15",
    ]
    .iter()
    .map(|&v| Value::from(v))
    .collect();
    QueryBinning::build_from_values(
        "EId",
        sensitive.clone(),
        nonsensitive.clone(),
        AttributeStats::from_values(sensitive.iter()),
        AttributeStats::from_values(nonsensitive.iter()),
        BinningConfig::default(),
    )
    .unwrap()
}

fn all_example3_values() -> Vec<Value> {
    let mut values: Vec<Value> = (1..=10).map(|i| Value::from(format!("s{i}"))).collect();
    values.extend((11..=15).map(|i| Value::from(format!("ns{i}"))));
    values
}

/// Simulates the adversarial view produced by answering every query with
/// the bin pair Algorithm 2 prescribes.
fn view_following_algorithm2(qb: &QueryBinning) -> AdversarialView {
    let mut view = AdversarialView::new();
    for value in all_example3_values() {
        let Some(pair) = qb.retrieve(&value) else {
            continue;
        };
        view.begin_episode();
        view.observe_plaintext_request(&qb.nonsensitive_bin(pair.nonsensitive_bin));
        let ids: Vec<pds_common::TupleId> = qb
            .sensitive_bin(pair.sensitive_bin)
            .iter()
            .enumerate()
            .map(|(i, _)| pds_common::TupleId::new((pair.sensitive_bin * 100 + i) as u64))
            .collect();
        view.observe_sensitive_result(&ids);
        view.end_episode();
    }
    view
}

/// Simulates Example 4: non-associated values are answered with an
/// arbitrary fixed pairing instead of the Algorithm-2 pairing.
fn view_violating_algorithm2(qb: &QueryBinning) -> AdversarialView {
    let mut view = AdversarialView::new();
    for value in all_example3_values() {
        let Some(pair) = qb.retrieve(&value) else {
            continue;
        };
        // Break the rule for non-associated values: always pair with bin 0.
        let nonsensitive_bin = if qb.sensitive_assignment(&value).is_some()
            && qb.nonsensitive_assignment(&value).is_some()
        {
            pair.nonsensitive_bin
        } else {
            0
        };
        view.begin_episode();
        view.observe_plaintext_request(&qb.nonsensitive_bin(nonsensitive_bin));
        let ids: Vec<pds_common::TupleId> = qb
            .sensitive_bin(pair.sensitive_bin)
            .iter()
            .enumerate()
            .map(|(i, _)| pds_common::TupleId::new((pair.sensitive_bin * 100 + i) as u64))
            .collect();
        view.observe_sensitive_result(&ids);
        view.end_episode();
    }
    view
}

#[test]
fn example3_layout_matches_paper() {
    let qb = example3_binning();
    assert_eq!(qb.shape().sensitive_bins, 5);
    assert_eq!(qb.shape().sensitive_bin_capacity, 2);
    assert_eq!(qb.shape().nonsensitive_bins, 2);
    assert_eq!(qb.shape().nonsensitive_bin_capacity, 5);
    qb.check_invariants().unwrap();
}

#[test]
fn algorithm2_preserves_all_surviving_matches() {
    // Figure 4a: every sensitive bin ends up associated with every
    // non-sensitive bin, so the adversary cannot drop any candidate
    // association.
    let qb = example3_binning();
    let view = view_following_algorithm2(&qb);
    let matches = SurvivingMatches::from_view(&view);
    assert_eq!(matches.sensitive_groups().len(), 5);
    assert_eq!(matches.nonsensitive_groups().len(), 2);
    assert!(matches.is_complete(), "all 10 bin pairs must be observed");
    assert!(matches.dropped_edges().is_empty());
    assert!((matches.min_ambiguity() - 1.0).abs() < 1e-12);
    assert!(check_partitioned_security(&view).is_secure());
}

#[test]
fn ignoring_algorithm2_drops_surviving_matches() {
    // Figure 4b / Example 4: pairing bins arbitrarily lets the adversary
    // rule out associations.
    let qb = example3_binning();
    let view = view_violating_algorithm2(&qb);
    let matches = SurvivingMatches::from_view(&view);
    assert!(!matches.is_complete());
    assert!(!matches.dropped_edges().is_empty());
    assert!(!check_partitioned_security(&view).is_secure());
}

#[test]
fn associated_values_share_one_bin_pair_via_both_rules() {
    let qb = example3_binning();
    for name in ["s1", "s2", "s3", "s5", "s6"] {
        let v = Value::from(name);
        let via_sensitive = qb.sensitive_assignment(&v).unwrap();
        let via_nonsensitive = qb.nonsensitive_assignment(&v).unwrap();
        // R1 and R2 must agree (the value sits at transposed coordinates).
        assert_eq!(via_sensitive.bin, via_nonsensitive.position);
        assert_eq!(via_sensitive.position, via_nonsensitive.bin);
    }
}
