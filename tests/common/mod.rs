//! Helpers shared by the equivalence test suites (a `tests/common` module,
//! not a test target): the canonical exhaustive Employee workload and the
//! byte-level answer representation both suites compare with.

use partitioned_data_security::prelude::*;

/// The Employee deployment parts plus the exhaustive value workload (every
/// distinct value of either side of the partition).
pub fn employee_setup() -> (pds_storage::PartitionedRelation, Vec<Value>) {
    let relation = employee_relation();
    let policy = employee_sensitivity_policy(&relation).unwrap();
    let parts = Partitioner::new(policy).split(&relation).unwrap();
    let attr = parts.sensitive.schema().attr_id("EId").unwrap();
    let mut values = parts.sensitive.distinct_values(attr);
    for v in parts.nonsensitive.distinct_values(attr) {
        if !values.contains(&v) {
            values.push(v);
        }
    }
    (parts, values)
}

/// An answer as a sorted multiset of encoded tuples — the byte-level
/// representation the owner would hand to the application.
pub fn answer_bytes(tuples: &[Tuple]) -> Vec<Vec<u8>> {
    let mut out: Vec<Vec<u8>> = tuples.iter().map(Tuple::encode).collect();
    out.sort();
    out
}
