//! Property-based integration tests for the sharded cloud deployment:
//! whatever the shard count and placement seed, a sharded deployment must be
//! **observationally identical** to the single-server one (byte-identical
//! answers for every value of the exhaustive Employee workload) and
//! partitioned data security must hold on every shard's own view *and* on
//! the composed coalition view.

use proptest::prelude::*;

use partitioned_data_security::prelude::*;

mod common;
use common::{answer_bytes, employee_setup};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every shard count and placement seed, the sharded deployment
    /// returns byte-identical answers to the single-server deployment for
    /// every value of the exhaustive Employee workload, and the security
    /// definition holds per shard and composed.
    #[test]
    fn sharded_equals_single_server_and_stays_secure(
        shards in 1usize..=8,
        placement_seed in 0u64..1_000,
    ) {
        let (parts, values) = employee_setup();

        // Single-server reference deployment.
        let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
        let mut single = QbExecutor::new(binning, NonDetScanEngine::new());
        let mut single_owner = DbOwner::new(5);
        let mut cloud = CloudServer::new(NetworkModel::paper_wan());
        single.outsource(&mut single_owner, &mut cloud, &parts).unwrap();

        // Sharded deployment over the same binning metadata.
        let binning = QueryBinning::build(&parts, "EId", BinningConfig::default()).unwrap();
        let mut sharded = QbExecutor::new(binning, NonDetScanEngine::new());
        let mut sharded_owner = DbOwner::new(5);
        let mut router = ShardRouter::new(
            shards,
            NetworkModel::paper_wan(),
            placement_seed,
        ).unwrap();
        sharded.outsource(&mut sharded_owner, &mut router, &parts).unwrap();

        // Sensitive data is partitioned, not replicated.
        prop_assert_eq!(router.encrypted_len(), cloud.encrypted_len());

        for value in &values {
            let expect = answer_bytes(
                &single.select(&mut single_owner, &mut cloud, value).unwrap(),
            );
            let got = answer_bytes(
                &sharded.select(&mut sharded_owner, &mut router, value).unwrap(),
            );
            prop_assert!(got == expect, "answers diverge for {}", value);
        }

        // The single-server view is secure (the baseline the paper proves)…
        let single_report = check_partitioned_security(cloud.adversarial_view());
        prop_assert!(single_report.is_secure(), "{:?}", single_report);

        // …and so is every shard's own view plus the composed view.
        let report = check_sharded_partitioned_security(&router.adversarial_views());
        prop_assert!(
            report.is_secure(),
            "shards={} seed={} report={:?}",
            shards, placement_seed, report
        );
        prop_assert_eq!(report.per_shard.len(), shards);

        // Every episode landed on exactly one shard and none was lost.
        let episodes: usize = router.adversarial_views().iter().map(|v| v.len()).sum();
        prop_assert_eq!(episodes, values.len());
    }
}
